//! Production screening: BIST go/no-go against a gain mask over a
//! Monte Carlo lot of fabricated DUTs, at throughput.
//!
//! This is the paper's motivating scenario — on-chip pass/fail without an
//! expensive ATE — with its accuracy-for-test-time trade-off run as a
//! first-class policy: an [`netan::EscalationSchedule`] screens the whole
//! lot at a cheap `M = 50`, then re-tests only the devices whose error
//! enclosure straddles a mask limit (`Ambiguous`) at `M = 200`, then
//! `M = 800` — each stage narrowing the enclosure 4× — under a total
//! simulated test-time budget. [`netan::LotEngine::run_escalated`] fans
//! every pass across a worker pool and amortizes the stimulus calibration
//! to one per stage.
//!
//! Run with: `cargo run --release --example production_screening`

use dut::ActiveRcFilter;
use mixsig::units::Seconds;
use netan::{lot_table, AnalyzerConfig, EscalationSchedule, GainMask, LotEngine, LotPlan};

fn main() -> Result<(), netan::NetanError> {
    let plan = LotPlan::from_mask(GainMask::paper_lowpass());
    // 9 % parts: some devices genuinely violate the mask, and some sit
    // close enough to a limit that a fast pass cannot bin them.
    let factory = |seed: u64| {
        ActiveRcFilter::paper_dut()
            .linearized()
            .fabricate(0.09, seed)
    };
    let seeds: Vec<u64> = (0..20).collect();

    // M = 50 costs a quarter of the paper's Bode setting at 4× the
    // enclosure width; M = 800 costs 4× at a quarter of the width. The
    // budget caps the total simulated test time (the schedule's unit of
    // account, from `netan::measurement_time`).
    let schedule = EscalationSchedule::from_periods(AnalyzerConfig::ideal(), &[50, 200, 800])
        .with_budget(Seconds(120.0));

    let engine = LotEngine::auto();
    println!(
        "screening {} devices across {} workers ({} stages, one calibration each)\n",
        seeds.len(),
        engine.threads(),
        schedule.stages().len(),
    );
    let report = engine.run_escalated(factory, &seeds, &plan, &schedule)?;
    print!("{}", lot_table(&report));

    // What the escalation bought: the same deep verdicts without paying
    // the deepest stage for every device.
    let deepest = schedule.stages().len() - 1;
    let all_deep = schedule.device_stage_time(deepest, plan.grid()).value() * seeds.len() as f64;
    let spent = report.spent().value();
    println!(
        "\neveryone at M = {} would cost {all_deep:.1} s of test time; escalation spent \
         {spent:.1} s ({:.1}x less)",
        schedule.stages()[deepest].periods,
        all_deep / spent,
    );

    println!("\nmachine-readable sinks: netan::lot_csv / netan::lot_json (schema netan.lot.v2)");
    Ok(())
}
