//! Quickstart: characterize the paper's 1 kHz low-pass DUT at a few
//! frequencies and print the Bode rows with their guaranteed error bands.
//!
//! Run with: `cargo run --release --example quickstart`

use dut::ActiveRcFilter;
use mixsig::units::Hertz;
use netan::{bode_table, AnalyzerConfig, NetworkAnalyzer};

fn main() -> Result<(), netan::NetanError> {
    // The DUT of the paper's demonstrator board (linearized: pure Bode).
    let device = ActiveRcFilter::paper_dut().linearized();

    // An ideal-hardware analyzer, M = 200 evaluation periods per point
    // (the paper's Fig. 10a/b setting).
    let mut analyzer = NetworkAnalyzer::new(&device, AnalyzerConfig::ideal());

    // Calibrate once over the bypass path: characterizes the stimulus.
    let cal = analyzer.calibrate()?;
    println!(
        "stimulus: {} V (phase {:.4} rad)\n",
        cal.amplitude, cal.phase.est
    );

    // Sweep a short log grid. The master clock is retuned per point so the
    // oversampling ratio N = 96 never changes.
    let freqs: Vec<Hertz> = netan::log_spaced(Hertz(100.0), Hertz(20_000.0), 9);
    let plot = analyzer.sweep(&freqs)?;

    println!("{}", bode_table(&plot));
    if let Some(fc) = plot.cutoff_frequency() {
        println!(
            "measured -3 dB cut-off: {:.1} Hz (nominal 1000 Hz)",
            fc.value()
        );
    }
    // Both metrics are None only for an empty plot; this sweep has points.
    println!(
        "worst |gain error| vs analytic: {:.3} dB; enclosure coverage: {:.0} %",
        plot.worst_gain_error_db().unwrap_or(f64::NAN),
        100.0 * plot.gain_coverage().unwrap_or(f64::NAN)
    );
    Ok(())
}
