//! Building a production test program: plan the test time for each spec
//! point, and export the ATE digital control patterns (the Agilent 93000's
//! role in the paper's Fig. 7).
//!
//! Run with: `cargo run --release --example test_program`

use ate::ControlProgram;
use mixsig::units::Hertz;
use netan::{plan_measurement, GainMask};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The BIST spec mask for the paper's DUT.
    let mask = GainMask::paper_lowpass();

    println!("test plan for the paper's low-pass spec mask");
    println!(
        "{:>12} {:>14} {:>10} {:>14}",
        "freq (Hz)", "expected (V)", "M", "test time (ms)"
    );
    let mut total = 0.0;
    for point in mask.points() {
        // Expected output level: stimulus ≈ 0.29 V scaled by the mask
        // center gain; plan for ±0.2 dB guaranteed accuracy.
        let center_db = (point.min_db + point.max_db) / 2.0;
        let expected = 0.29 * 10f64.powf(center_db / 20.0);
        let plan = plan_measurement(expected, 0.2, point.frequency, 1.0)?;
        total += plan.test_time.value();
        println!(
            "{:>12.0} {:>14.4} {:>10} {:>14.2}",
            point.frequency.value(),
            expected,
            plan.periods,
            plan.test_time.value() * 1e3
        );
    }
    println!("total acquisition time: {:.1} ms\n", total * 1e3);

    // Export the first 12 vectors of the k = 1 control pattern, ATE style.
    let program = ControlProgram::render(1, 12)?;
    println!("digital control pattern (k = 1), cycle  c4c3c2c1  Φin  q1q2:");
    print!("{}", program.to_pattern_text());

    // How the pattern scales: one full stimulus period is 96 vectors.
    let full = ControlProgram::render(3, 96)?;
    println!(
        "\nk = 3 pattern: {} vectors/period, q1 period {} cycles",
        full.len(),
        96 / 3
    );
    let _ = plan_measurement(0.29, 0.05, Hertz(1000.0), 1.0)?; // tighter spec → longer M
    Ok(())
}
