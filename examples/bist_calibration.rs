//! The calibration path at work: verifying the BIST circuitry itself and
//! programming the stimulus amplitude (paper Fig. 8a + Section III.C).
//!
//! Demonstrates the dashed bypass path of Fig. 1: the generated waveform is
//! fed directly to the evaluator, which (a) proves generator and evaluator
//! are alive, and (b) characterizes the stimulus so DUT measurements can be
//! referred to it. Also shows the paper's amplitude programming: the
//! output scales linearly with `VA+ − VA−`.
//!
//! Run with: `cargo run --release --example bist_calibration`

use ate::{DemoBoard, SignalPath};
use dut::ActiveRcFilter;
use mixsig::clock::MasterClock;
use mixsig::units::{Hertz, Volts};
use sdeval::{EvaluatorConfig, SinewaveEvaluator};
use sigen::GeneratorConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Fig. 8a setting: f_eva = 6 MHz → f_wave = 62.5 kHz, and
    // three amplitude codes.
    let clk = MasterClock::from_hz(6.0e6);
    let device = ActiveRcFilter::paper_dut();

    println!("VA+−VA− (mV) | measured amplitude (V) | enclosure");
    println!("-------------+------------------------+--------------------");
    for va_mv in [150.0, 250.0, 300.0] {
        let gen_cfg = GeneratorConfig::cmos_035um(clk, Volts::from_mv(va_mv), 11);
        let mut board = DemoBoard::new(gen_cfg, &device);
        board.set_path(SignalPath::CalibrationBypass);
        board.warm_up(40);

        let mut evaluator = SinewaveEvaluator::new(EvaluatorConfig::cmos_035um(3));
        let mut source = board.source();
        let m = evaluator.measure_harmonic(&mut source, 1, 200)?;
        println!(
            "{:>12.0} | {:>22.4} | [{:.4}, {:.4}]",
            va_mv, m.amplitude.est, m.amplitude.lo, m.amplitude.hi
        );
    }

    // Functional self-check: a dead generator (VA = 0) must read ≈ 0.
    let gen_cfg = GeneratorConfig::cmos_035um(clk, Volts(0.0), 11);
    let mut board = DemoBoard::new(gen_cfg, &device);
    board.set_path(SignalPath::CalibrationBypass);
    board.warm_up(10);
    let mut evaluator = SinewaveEvaluator::new(EvaluatorConfig::cmos_035um(3));
    let mut source = board.source();
    let dead = evaluator.measure_harmonic(&mut source, 1, 50)?;
    println!(
        "\nself-check with VA = 0: amplitude {:.4} V (upper bound {:.4} V)",
        dead.amplitude.est, dead.amplitude.hi
    );

    // Sweep of f_wave with the master clock: the same hardware measures at
    // 1 kHz and 20 kHz with identical N = 96 (paper's synchronization).
    println!("\nmaster-clock retuning (constant N = 96):");
    for f_wave in [1000.0, 8000.0, 20_000.0] {
        let clk = MasterClock::for_stimulus(Hertz(f_wave));
        println!(
            "  f_wave = {:>7.0} Hz  →  f_eva = {:>9.0} Hz, f_gen = {:>9.0} Hz",
            f_wave,
            clk.frequency_hz(),
            clk.generator_clock().frequency_hz()
        );
    }
    Ok(())
}
