//! Wafer-scale sharding: one lot split into seed ranges, measured on
//! separate OS threads, and merged back into the **byte-identical**
//! monolithic report.
//!
//! The lot engine already fans devices across a worker pool; this
//! example shows the layer above it — [`netan::LotEngine::run_range`]
//! shards as the unit of distribution. Each shard is an independent
//! `run_range` call (its own calibration, its own thread here; on real
//! infrastructure, its own tester or host), and
//! [`netan::LotReport::merge`] folds adjacent shards associatively. The
//! punchline is asserted, not claimed: the merged document's
//! `netan.lot.v4` JSON equals the single-run document byte for byte —
//! for the plain run and for an unbudgeted escalated run under
//! sequential stopping (each shard escalates its own devices; the
//! merged stage summaries re-fold from the per-device observed
//! charges).
//!
//! Run with: `cargo run --release --example wafer_shards`

use dut::ActiveRcFilter;
use netan::{lot_json, lot_table, AnalyzerConfig, GainMask, LotEngine, LotPlan, LotReport};

const LOT_DEVICES: u64 = 24;
const SHARDS: u64 = 4;

fn main() -> Result<(), netan::NetanError> {
    let plan = LotPlan::from_mask(GainMask::paper_lowpass());
    let config = AnalyzerConfig::ideal().with_periods(50);
    let factory = |seed: u64| {
        ActiveRcFilter::paper_dut()
            .linearized()
            .fabricate(0.07, seed)
    };

    // One monolithic run is the reference the merged shards must hit.
    let engine = LotEngine::auto();
    let monolithic = engine.run_range(factory, 0..LOT_DEVICES, &plan, config)?;

    // The same lot as SHARDS adjacent seed ranges, one OS thread each.
    // Scoped threads borrow plan/config/engine; each shard produces a
    // self-contained report carrying its seed span.
    let per_shard = LOT_DEVICES / SHARDS;
    let shards: Vec<LotReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SHARDS)
            .map(|i| {
                let (engine, plan) = (&engine, &plan);
                let range = i * per_shard..(i + 1) * per_shard;
                scope.spawn(move || engine.run_range(factory, range, plan, config))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect::<Result<_, _>>()
    })?;

    println!(
        "measured {LOT_DEVICES} devices as {SHARDS} shards of {per_shard} on separate threads:"
    );
    for shard in &shards {
        let span = shard.shard().expect("run_range always attaches a span");
        println!(
            "  seeds [{:2}, {:2}): {} pass / {} device(s)",
            span.seed_start,
            span.seed_end,
            shard.counts().pass,
            shard.len(),
        );
    }

    // Fold the shards back together — merge is associative, so any
    // adjacent grouping gives the same report.
    let merged = shards
        .into_iter()
        .reduce(LotReport::merge)
        .expect("at least one shard");

    let merged_json = lot_json(&merged);
    assert_eq!(
        merged_json,
        lot_json(&monolithic),
        "merged shards must reproduce the monolithic document byte for byte"
    );
    println!("\nmerged report is byte-identical to the monolithic run:\n");
    print!("{}", lot_table(&merged));

    let head: String = merged_json.chars().take(120).collect();
    println!("\nnetan.lot.v4 head: {head}…");

    // The same partition property holds for escalated screening with
    // sequential stopping, as long as the schedule is unbudgeted (a
    // budget gates re-tests on the global seed-order ledger, which a
    // shard cannot see — budgeted lots shard through
    // `netan::LotCheckpoint`, which threads the remainder itself).
    let schedule =
        netan::EscalationSchedule::from_periods(AnalyzerConfig::ideal(), &[50, 200]).sequential();
    let esc_monolithic = engine.run_escalated_range(factory, 0..LOT_DEVICES, &plan, &schedule)?;
    let esc_merged = (0..SHARDS)
        .map(|i| {
            engine.run_escalated_range(
                factory,
                i * per_shard..(i + 1) * per_shard,
                &plan,
                &schedule,
            )
        })
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .reduce(LotReport::merge)
        .expect("at least one shard");
    assert_eq!(
        lot_json(&esc_merged),
        lot_json(&esc_monolithic),
        "merged escalated shards must reproduce the monolithic document byte for byte"
    );
    println!(
        "escalated + sequential stopping shards merge byte-identically too \
         ({} re-test(s), {:.3} s observed spend)",
        esc_merged.stages()[1..]
            .iter()
            .map(|s| s.tested)
            .sum::<usize>(),
        esc_merged.spent().value(),
    );
    Ok(())
}
