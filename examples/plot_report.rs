//! Regenerates fig10-style gain/phase data from `netan.*` JSON report
//! documents (the ROADMAP's plotting-script item). Reads `netan.bode.v1`,
//! `netan.bode.v2` (v2 added the per-point adaptive-refinement `round`),
//! and `netan.lot.v1` through `netan.lot.v4` (v2 added escalation stage
//! summaries, per-device provenance and the budget ledger; v3 added
//! shard provenance and per-device stage costs; v4 added the stopping
//! policy and observed per-stage charges — the point rows this tool
//! extracts are unchanged throughout).
//!
//! ```sh
//! # CSV from a saved report (bode or lot schema is auto-detected):
//! cargo run --release --example plot_report -- report.json > bode.csv
//!
//! # No argument: measure the paper DUT, round-trip it through
//! # `bode_json`, and emit the CSV — a self-contained demo:
//! cargo run --release --example plot_report -- > bode.csv
//!
//! # A gnuplot script for the emitted CSV:
//! cargo run --release --example plot_report -- --gnuplot bode.csv
//! ```
//!
//! The CSV carries one row per measured point — frequency, the gain and
//! phase enclosures (lo/est/hi), and the analytic reference curve — which
//! is exactly what the paper's Fig. 10a/10b overlay. Lot documents emit
//! the same columns with a leading `seed` column, one block per device.

use netan::{bode_json, log_spaced, AnalyzerConfig, NetworkAnalyzer, SweepEngine};

use std::fmt::Write as _;

// ---------------------------------------------------------------------
// Minimal JSON value model + recursive-descent parser. The workspace is
// fully offline (no serde); the grammar below covers everything the
// `netan.*` emitters in `netan::report` produce.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn arr(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            _ => &[],
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of document".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let esc = self.bytes.get(self.pos + 1).copied();
                    match esc {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 2..self.pos + 6)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| format!("bad \\u escape at offset {}", self.pos))?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 2;
                }
                Some(_) => {
                    // Copy an unescaped run verbatim: the input is a &str,
                    // so re-slicing it keeps multi-byte UTF-8 intact.
                    let start = self.pos;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b != b'"' && b != b'\\')
                    {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid UTF-8 at offset {start}"))?;
                    out.push_str(run);
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

// ---------------------------------------------------------------------
// CSV emission.
// ---------------------------------------------------------------------

const POINT_COLUMNS: &str = "freq_hz,gain_db_lo,gain_db_est,gain_db_hi,\
                             phase_deg_lo,phase_deg_est,phase_deg_hi,\
                             ideal_gain_db,ideal_phase_deg,round";

fn f(v: Option<&Json>) -> f64 {
    v.and_then(Json::num).unwrap_or(f64::NAN)
}

fn push_point_row(out: &mut String, prefix: &str, p: &Json) {
    let g = p.get("gain_db");
    let ph = p.get("phase_deg");
    let bound = |b: Option<&Json>, field: &str| f(b.and_then(|b| b.get(field)));
    // v1 documents (and lot points) carry no refinement provenance:
    // everything is a round-0 (seed/fixed-grid) point.
    let round = p.get("round").and_then(Json::num).unwrap_or(0.0);
    let _ = writeln!(
        out,
        "{prefix}{},{},{},{},{},{},{},{},{},{}",
        f(p.get("freq_hz")),
        bound(g, "lo"),
        bound(g, "est"),
        bound(g, "hi"),
        bound(ph, "lo"),
        bound(ph, "est"),
        bound(ph, "hi"),
        f(p.get("ideal_gain_db")),
        f(p.get("ideal_phase_deg")),
        round,
    );
}

fn bode_csv(doc: &Json) -> String {
    let mut out = format!("{POINT_COLUMNS}\n");
    for p in doc.get("points").map(Json::arr).unwrap_or_default() {
        push_point_row(&mut out, "", p);
    }
    out
}

fn lot_csv_points(doc: &Json) -> String {
    let mut out = format!("seed,verdict,{POINT_COLUMNS}\n");
    for d in doc.get("devices").map(Json::arr).unwrap_or_default() {
        let seed = f(d.get("seed"));
        let verdict = d.get("verdict").and_then(Json::str).unwrap_or("?");
        for p in d.get("points").map(Json::arr).unwrap_or_default() {
            push_point_row(&mut out, &format!("{seed},{verdict},"), p);
        }
    }
    out
}

/// A gnuplot script reproducing the paper's Fig. 10a/10b presentation
/// from a CSV produced by this tool: measured enclosures as error bars
/// over the analytic reference curve.
fn gnuplot_script(csv: &str) -> String {
    format!(
        "set datafile separator ','\n\
         set logscale x\n\
         set xlabel 'frequency (Hz)'\n\
         set key left bottom\n\
         set terminal pngcairo size 900,700\n\
         set output 'fig10a_gain.png'\n\
         set ylabel 'gain (dB)'\n\
         plot '{csv}' skip 1 using 1:3:2:4 with yerrorbars title 'measured enclosure', \\\n\
         \x20    '{csv}' skip 1 using 1:8 with lines title 'analytic'\n\
         set output 'fig10b_phase.png'\n\
         set ylabel 'phase (deg)'\n\
         plot '{csv}' skip 1 using 1:6:5:7 with yerrorbars title 'measured enclosure', \\\n\
         \x20    '{csv}' skip 1 using 1:9 with lines title 'analytic'\n"
    )
}

/// Demo document: sweep the paper DUT and serialize it — the round trip
/// proves the consumer reads exactly what the sinks emit.
fn demo_document() -> String {
    let dut = dut::ActiveRcFilter::paper_dut().linearized();
    let mut na = NetworkAnalyzer::new(&dut, AnalyzerConfig::ideal().with_periods(100));
    let grid = log_spaced(
        mixsig::units::Hertz(100.0),
        mixsig::units::Hertz(20_000.0),
        13,
    );
    let plot = na
        .sweep_with(&SweepEngine::auto(), &grid)
        .expect("demo sweep failed");
    bode_json(&plot)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let [flag, csv] = args.as_slice() {
        if flag == "--gnuplot" {
            print!("{}", gnuplot_script(csv));
            return;
        }
    }
    let text = match args.first().map(String::as_str) {
        None | Some("-") => demo_document(),
        Some(path) => {
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
    };
    let doc = Parser::parse(&text).unwrap_or_else(|e| panic!("bad JSON: {e}"));
    let schema = doc.get("schema").and_then(Json::str).unwrap_or("");
    let csv = match schema {
        "netan.bode.v1" | "netan.bode.v2" => bode_csv(&doc),
        "netan.lot.v1" | "netan.lot.v2" | "netan.lot.v3" | "netan.lot.v4" => lot_csv_points(&doc),
        other => {
            panic!("unsupported schema {other:?} (expected netan.bode.v1/v2 or netan.lot.v1-v4)")
        }
    };
    print!("{csv}");
    eprintln!(
        "# {} rows from schema {schema}; next: `plot_report --gnuplot <csv>` for the fig10 script",
        csv.lines().count() - 1
    );
}
