//! A `netan.job.v1` client for the `netan-serve` screening service:
//! submits jobs over TCP, streams their shard progress, and (optionally)
//! proves the service honest by recomputing each lot in-process and
//! comparing the report bytes.
//!
//! Start a server, then drive it:
//!
//! ```sh
//! cargo run --release -p netan-serve --bin netan-serve -- --addr 127.0.0.1:7411 &
//! cargo run --release -p netan-serve --example screening_client -- \
//!     --addr 127.0.0.1:7411 --jobs 2 --devices 8 --shard 2 --verify
//! cargo run --release -p netan-serve --example screening_client -- \
//!     --addr 127.0.0.1:7411 --shutdown
//! ```
//!
//! `--jobs K` opens K concurrent connections, each submitting its own
//! seed range (job *i* screens seeds `[i*devices, (i+1)*devices)`), so
//! the shared shard pool interleaves them. `--verify` recomputes every
//! job after it completes — a monolithic
//! [`netan::LotEngine::run_escalated_range`] for unbudgeted jobs, a
//! [`netan::LotCheckpoint::run_escalated`] drive with the same shard
//! size for budgeted ones (re-test admission follows the sequential
//! shard ledger; see the sharding notes in `netan::lot`) — and asserts
//! the `netan.lot.v4` documents are **byte-identical**. `--shutdown`
//! sends the graceful-shutdown frame instead of a job.

use dut::ActiveRcFilter;
use mixsig::units::Seconds;
use netan::{
    lot_json, AnalyzerConfig, EscalationSchedule, GainMask, LotCheckpoint, LotEngine, LotPlan,
    LotReport,
};
use netan_serve::{ClientFrame, DutDescription, JobRequest, ServerFrame};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

const TOLERANCE: f64 = 0.05;
const LINEARIZED: bool = true;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut addr = String::from("127.0.0.1:7411");
    let mut devices: u64 = 8;
    let mut shard: u64 = 2;
    let mut jobs: u64 = 1;
    let mut budget: Option<f64> = None;
    let mut verify = false;
    let mut shutdown = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--devices" => devices = value("--devices").parse().expect("--devices: integer"),
            "--shard" => shard = value("--shard").parse().expect("--shard: integer"),
            "--jobs" => jobs = value("--jobs").parse().expect("--jobs: integer"),
            "--budget" => budget = Some(value("--budget").parse().expect("--budget: seconds")),
            "--verify" => verify = true,
            "--shutdown" => shutdown = true,
            other => panic!("unknown flag {other:?} (see the module docs)"),
        }
    }

    if shutdown {
        let mut stream = TcpStream::connect(&addr)?;
        stream.write_all(format!("{}\n", ClientFrame::Shutdown.render()).as_bytes())?;
        let mut reply = String::new();
        BufReader::new(&stream).read_line(&mut reply)?;
        match ServerFrame::parse(reply.trim())? {
            ServerFrame::Bye => println!("server acknowledged shutdown"),
            other => panic!("expected bye, got {other:?}"),
        }
        return Ok(());
    }

    // One thread per job, each with its own connection — the server's
    // bounded shard pool interleaves them.
    let handles: Vec<_> = (0..jobs)
        .map(|i| {
            let addr = addr.clone();
            let request = job_request(i * devices, (i + 1) * devices, shard, budget);
            std::thread::spawn(move || run_job(&addr, i, &request))
        })
        .collect();
    let mut failed = false;
    for (i, handle) in handles.into_iter().enumerate() {
        match handle.join().expect("client thread panicked") {
            Ok(report) => {
                println!(
                    "job {i}: {} devices screened, {:.1} s simulated test time",
                    report.len(),
                    report.spent().value()
                );
                if verify {
                    let reference =
                        recompute(i as u64 * devices, (i as u64 + 1) * devices, shard, budget);
                    assert_eq!(
                        lot_json(&report),
                        lot_json(&reference),
                        "job {i}: service report differs from the in-process reference"
                    );
                    println!("job {i}: byte-identical to the in-process reference ✓");
                }
            }
            Err(message) => {
                eprintln!("job {i} failed: {message}");
                failed = true;
            }
        }
    }
    if failed {
        return Err("at least one job failed".into());
    }
    Ok(())
}

fn job_request(seed_start: u64, seed_end: u64, shard: u64, budget: Option<f64>) -> JobRequest {
    let mut schedule = EscalationSchedule::from_periods(AnalyzerConfig::ideal(), &[50, 200]);
    if let Some(b) = budget {
        schedule = schedule.with_budget(Seconds(b));
    }
    JobRequest {
        dut: DutDescription {
            tolerance: TOLERANCE,
            linearized: LINEARIZED,
        },
        seed_start,
        seed_end,
        shard_devices: shard,
        plan: LotPlan::from_mask(GainMask::paper_lowpass()),
        schedule,
    }
}

/// Submits one job and streams its frames until the terminal one.
fn run_job(addr: &str, index: u64, request: &JobRequest) -> Result<LotReport, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let frame = ClientFrame::Submit(Box::new(request.clone()));
    writer
        .write_all(format!("{}\n", frame.render()).as_bytes())
        .map_err(|e| e.to_string())?;

    for line in BufReader::new(stream).lines() {
        let line = line.map_err(|e| e.to_string())?;
        match ServerFrame::parse(line.trim()).map_err(|e| e.to_string())? {
            ServerFrame::Accepted { job, shards } => {
                println!("job {index}: accepted as #{job}, {shards} shards");
            }
            ServerFrame::Progress {
                seed_start,
                seed_end,
                done,
                total,
                devices,
                spent_s,
                resumed,
                ..
            } => {
                println!(
                    "job {index}: shard {seed_start}..{seed_end} {} ({done}/{total}, {devices} devices, {spent_s:.1} s)",
                    if resumed { "resumed" } else { "done" }
                );
            }
            ServerFrame::Retry {
                seed_start,
                seed_end,
                message,
                ..
            } => {
                println!(
                    "job {index}: shard {seed_start}..{seed_end} retried after panic: {message}"
                );
            }
            ServerFrame::Finished { report, .. } => return Ok(*report),
            ServerFrame::Rejected { error } => return Err(format!("rejected: {error:?}")),
            ServerFrame::Error { error, .. } => return Err(format!("failed: {error:?}")),
            ServerFrame::Bye => return Err("server said bye mid-job".to_string()),
        }
    }
    Err("connection closed before a terminal frame".to_string())
}

/// The in-process reference the service must match byte-for-byte.
fn recompute(seed_start: u64, seed_end: u64, shard: u64, budget: Option<f64>) -> LotReport {
    let request = job_request(seed_start, seed_end, shard, budget);
    let factory = |seed: u64| {
        let base = ActiveRcFilter::paper_dut();
        let base = if LINEARIZED { base.linearized() } else { base };
        base.fabricate(TOLERANCE, seed)
    };
    let engine = LotEngine::serial();
    if budget.is_some() {
        // Budgeted sharding threads the observed-cost ledger shard by
        // shard; the reference is a checkpoint drive, not a monolith.
        let dir = std::env::temp_dir().join(format!(
            "netan-client-verify-{}-{seed_start}",
            std::process::id()
        ));
        let report = LotCheckpoint::new(&dir, shard)
            .run_escalated(
                &engine,
                factory,
                seed_start..seed_end,
                &request.plan,
                &request.schedule,
            )
            .expect("reference checkpoint drive");
        std::fs::remove_dir_all(&dir).ok();
        report
    } else {
        engine
            .run_escalated_range(
                factory,
                seed_start..seed_end,
                &request.plan,
                &request.schedule,
            )
            .expect("reference lot run")
    }
}
