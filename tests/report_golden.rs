//! Golden-output tests for the report sinks: the JSON serialization of a
//! small seeded lot — plain and escalated — is compared byte-for-byte
//! against checked-in fixtures, and the CSV layout is pinned. Everything
//! in the pipeline is seeded, so the bytes are reproducible on a given
//! platform; transcendental calls (`sin`, `log10`, …) go through the
//! system libm, so a different platform/libm may drift by an ulp and
//! shift the shortest-round-trip digits. If that — or a deliberate
//! change — moves the bytes, re-bless with
//! `UPDATE_GOLDEN=1 cargo test -p netan --test report_golden`.
//! The structural tests below are platform-independent.
//!
//! `tests/fixtures/lot_small_v1.json`, `lot_small_v2.json` and
//! `lot_small_v3.json` are the frozen `netan.lot.v1`/`v2`/`v3`
//! documents from before their respective schema bumps. They are never
//! regenerated — they exist so the `plot_report` consumer and
//! `netan::parse_lot_json` provably keep reading every schema version
//! ever emitted.

use dut::ActiveRcFilter;
use mixsig::units::Seconds;
use netan::{
    bode_json, lot_csv, lot_json, parse_lot_json, AnalyzerConfig, EscalationSchedule, GainMask,
    LotEngine, LotPlan, LotReport,
};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/lot_small.json"
);

const ESCALATED_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/lot_escalated.json"
);

const V1_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/lot_small_v1.json"
);

const V2_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/lot_small_v2.json"
);

const V3_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/lot_small_v3.json"
);

fn small_seeded_lot() -> LotReport {
    let plan = LotPlan::from_mask(GainMask::paper_lowpass());
    let seeds = [0u64, 1, 2, 3];
    LotEngine::serial()
        .run(
            |seed| {
                ActiveRcFilter::paper_dut()
                    .linearized()
                    .fabricate(0.05, seed)
            },
            &seeds,
            &plan,
            AnalyzerConfig::ideal().with_periods(50),
        )
        .unwrap()
}

/// A seeded escalated lot whose budget pays for the screen plus some —
/// not all — re-tests, so the fixture pins every v2 feature at once:
/// stage summaries, per-device provenance, and an exhausted budget.
/// (Half a re-test over the screening cost: the observed-cost ledger
/// admits exactly one re-test — overshooting by its own charge — and
/// denies the rest.)
fn escalated_seeded_lot() -> LotReport {
    let plan = LotPlan::from_mask(GainMask::paper_lowpass());
    let seeds = [0u64, 1, 2, 3, 4, 5];
    let free = EscalationSchedule::from_periods(AnalyzerConfig::ideal(), &[30, 90]);
    let c0 = free.device_stage_time(0, plan.grid()).value();
    let c1 = free.device_stage_time(1, plan.grid()).value();
    let schedule = free.with_budget(Seconds(seeds.len() as f64 * c0 + 0.5 * c1));
    LotEngine::serial()
        .run_escalated(
            |seed| {
                ActiveRcFilter::paper_dut()
                    .linearized()
                    .fabricate(0.09, seed)
            },
            &seeds,
            &plan,
            &schedule,
        )
        .unwrap()
}

fn check_golden(json: &str, path: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, format!("{json}\n")).unwrap();
    }
    let golden = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("fixture {path}: {e} (bless with UPDATE_GOLDEN=1)"));
    assert_eq!(
        json,
        golden.trim_end(),
        "lot_json drifted from {path}; re-bless with UPDATE_GOLDEN=1 if intended"
    );
}

#[test]
fn lot_json_matches_golden_fixture() {
    check_golden(&lot_json(&small_seeded_lot()), FIXTURE);
}

#[test]
fn escalated_lot_json_matches_golden_fixture() {
    check_golden(&lot_json(&escalated_seeded_lot()), ESCALATED_FIXTURE);
}

#[test]
fn lot_json_structure_is_well_formed() {
    let json = lot_json(&small_seeded_lot());
    assert!(json.starts_with("{\"schema\":\"netan.lot.v4\",\"stopping\":\"staged\","));
    assert!(json.ends_with("]}"));
    assert_eq!(json.matches("\"seed\":").count(), 4);
    // v4: one observed per-stage charge array per device.
    assert_eq!(json.matches("\"stage_times_s\":").count(), 4);
    // Seed-slice runs carry their span as shard provenance.
    assert!(json.contains("\"shard\":{\"seed_start\":0,\"seed_end\":4,\"complete\":true}"));
    // The mask plus 4 devices × 4 points each.
    assert_eq!(json.matches("\"freq_hz\":").count(), 4 + 4 * 4);
    // One stage summary (the plain run) plus a provenance field per device.
    assert_eq!(json.matches("\"stage\":").count(), 1 + 4);
    // Fixed-grid plans know the uniform per-device stage cost.
    assert_eq!(json.matches("\"device_time_s\":").count(), 1);
    assert!(!json.contains("\"device_time_s\":null"));
    assert!(json.contains("\"budget\":{\"limit_s\":null,"));
    assert!(json.contains("\"exhausted\":false"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    assert!(!json.contains("NaN") && !json.contains("inf"));
}

#[test]
fn escalated_lot_json_structure_is_well_formed() {
    let report = escalated_seeded_lot();
    // The fixture premise: the budget stopped at least one re-test.
    assert!(report.budget_exhausted());
    assert_eq!(report.stages().len(), 2);
    let json = lot_json(&report);
    assert!(json.starts_with("{\"schema\":\"netan.lot.v4\","));
    assert!(json.contains("\"shard\":{\"seed_start\":0,\"seed_end\":6,\"complete\":true}"));
    assert_eq!(json.matches("\"seed\":").count(), 6);
    assert_eq!(json.matches("\"stage_times_s\":").count(), 6);
    // Two stage summaries plus one provenance field per device.
    assert_eq!(json.matches("\"stage\":").count(), 2 + 6);
    assert_eq!(json.matches("\"device_time_s\":").count(), 2);
    assert!(json.contains("\"exhausted\":true"));
    assert!(json.contains("\"periods\":30"));
    assert!(json.contains("\"periods\":90"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    assert!(!json.contains("NaN") && !json.contains("inf"));
}

#[test]
fn lot_csv_rows_and_columns_are_pinned() {
    let report = small_seeded_lot();
    let csv = lot_csv(&report);
    let lines: Vec<&str> = csv.lines().collect();
    // Header + one row per device.
    assert_eq!(lines.len(), 1 + report.len());
    assert_eq!(
        lines[0],
        "seed,verdict,fit_gain,fit_f0_hz,fit_q,cutoff_hz,worst_gain_err_db,stage,periods,test_time_s,stage_times_s,shard"
    );
    for (i, row) in lines[1..].iter().enumerate() {
        assert_eq!(row.split(',').count(), 12, "row {row}");
        assert!(row.starts_with(&format!("{i},")), "row {row}");
        assert!(row.ends_with(",0..4"), "row {row}");
    }
}

#[test]
fn bode_json_round_trips_the_device_plot() {
    let report = small_seeded_lot();
    let json = bode_json(&report.devices()[0].plot);
    assert!(json.starts_with("{\"schema\":\"netan.bode.v2\",\"points\":["));
    assert_eq!(json.matches("\"freq_hz\":").count(), 4);
    // Fixed-grid sweeps carry round-0 provenance on every point.
    assert_eq!(json.matches("\"round\":0").count(), 4);
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

#[test]
fn parse_lot_json_round_trips_the_golden_fixtures() {
    // The v4 parser re-renders its own documents byte for byte — the
    // property checkpoint/resume leans on, proven here against the
    // blessed fixtures rather than a fresh in-memory report.
    for path in [FIXTURE, ESCALATED_FIXTURE] {
        let golden = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("fixture {path}: {e} (bless with UPDATE_GOLDEN=1)"));
        let report = parse_lot_json(&golden).unwrap_or_else(|e| panic!("{path}: {e}"));
        assert_eq!(lot_json(&report), golden.trim_end(), "{path}");
    }
}

#[test]
fn parse_lot_json_reads_the_frozen_v1_v2_and_v3_fixtures() {
    // Older documents parse (with their missing fields defaulted) and
    // re-render as v4 — the upgrade path for saved reports.
    for (path, devices) in [(V1_FIXTURE, 4), (V2_FIXTURE, 4), (V3_FIXTURE, 4)] {
        let golden = std::fs::read_to_string(path).unwrap();
        let report = parse_lot_json(&golden).unwrap_or_else(|e| panic!("{path}: {e}"));
        assert_eq!(report.len(), devices, "{path}");
        assert!(lot_json(&report).starts_with("{\"schema\":\"netan.lot.v4\","));
        // Pre-v4 documents carry no observed per-stage charges.
        assert!(
            report.devices().iter().all(|d| d.stage_times.is_empty()),
            "{path}"
        );
    }
    // The v3 freeze and the live v4 fixture describe the same lot, so
    // everything but the schema-versioned extras must agree — including
    // the shard span the v3 schema already carried.
    let v3 = parse_lot_json(&std::fs::read_to_string(V3_FIXTURE).unwrap()).unwrap();
    let v4 = parse_lot_json(&std::fs::read_to_string(FIXTURE).unwrap()).unwrap();
    assert_eq!(v3.devices().len(), v4.devices().len());
    assert_eq!(v3.shard(), v4.shard());
    for (a, b) in v3.devices().iter().zip(v4.devices()) {
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.test_time, b.test_time);
    }
}

/// Runs the `plot_report` example on a fixture and returns its stdout.
/// The nested cargo invocation reuses the build cache `cargo test`
/// already produced for the example target.
fn plot_report_output(fixture: &str) -> String {
    let out = std::process::Command::new(env!("CARGO"))
        .args(["run", "--quiet", "--example", "plot_report", "--"])
        .arg(fixture)
        .output()
        .expect("failed to spawn cargo run --example plot_report");
    assert!(
        out.status.success(),
        "plot_report rejected {fixture}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("plot_report emitted non-UTF-8")
}

#[test]
fn plot_report_still_consumes_schema_v1() {
    // Regression: the schema bumps must not orphan saved v1 documents.
    // The frozen pre-bump fixture has 4 devices x 4 points.
    let csv = plot_report_output(V1_FIXTURE);
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 1 + 16, "unexpected row count:\n{csv}");
    assert!(lines[0].starts_with("seed,verdict,freq_hz,"));
    // v1 points carry no provenance: every row parses as round 0.
    for row in &lines[1..] {
        assert!(row.ends_with(",0"), "row {row}");
    }
}

#[test]
fn plot_report_still_consumes_schema_v2() {
    // Regression: the v3 bump must not orphan saved v2 documents.
    let csv = plot_report_output(V2_FIXTURE);
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 1 + 16, "unexpected row count:\n{csv}");
    assert!(lines[0].starts_with("seed,verdict,freq_hz,"));
}

#[test]
fn plot_report_still_consumes_schema_v3() {
    // Regression: the v4 bump must not orphan saved v3 documents.
    let csv = plot_report_output(V3_FIXTURE);
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 1 + 16, "unexpected row count:\n{csv}");
    assert!(lines[0].starts_with("seed,verdict,freq_hz,"));
}

#[test]
fn plot_report_consumes_schema_v4() {
    // The consumer reads what the sink now writes: same per-point rows,
    // with the v4 stopping/observed-charge extras ignored.
    let csv = plot_report_output(ESCALATED_FIXTURE);
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 1 + 6 * 4, "unexpected row count:\n{csv}");
    assert!(lines[0].starts_with("seed,verdict,freq_hz,"));
}
