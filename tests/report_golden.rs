//! Golden-output tests for the report sinks: the JSON serialization of a
//! small seeded lot is compared byte-for-byte against a checked-in
//! fixture, and the CSV layout is pinned. Everything in the pipeline is
//! seeded, so the bytes are reproducible on a given platform; transcendental
//! calls (`sin`, `log10`, …) go through the system libm, so a different
//! platform/libm may drift by an ulp and shift the shortest-round-trip
//! digits. If that — or a deliberate change — moves the bytes, re-bless
//! with `UPDATE_GOLDEN=1 cargo test -p netan --test report_golden`.
//! The structural tests below are platform-independent.

use dut::ActiveRcFilter;
use netan::{
    bode_json, lot_csv, lot_json, AnalyzerConfig, GainMask, LotEngine, LotPlan, LotReport,
};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/lot_small.json"
);

fn small_seeded_lot() -> LotReport {
    let plan = LotPlan::from_mask(GainMask::paper_lowpass());
    let seeds = [0u64, 1, 2, 3];
    LotEngine::serial()
        .run(
            |seed| {
                ActiveRcFilter::paper_dut()
                    .linearized()
                    .fabricate(0.05, seed)
            },
            &seeds,
            &plan,
            AnalyzerConfig::ideal().with_periods(50),
        )
        .unwrap()
}

#[test]
fn lot_json_matches_golden_fixture() {
    let json = lot_json(&small_seeded_lot());
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(FIXTURE, format!("{json}\n")).unwrap();
    }
    let golden = std::fs::read_to_string(FIXTURE).expect("fixture tests/fixtures/lot_small.json");
    assert_eq!(
        json,
        golden.trim_end(),
        "lot_json drifted from the fixture; re-bless with UPDATE_GOLDEN=1 if intended"
    );
}

#[test]
fn lot_json_structure_is_well_formed() {
    let json = lot_json(&small_seeded_lot());
    assert!(json.starts_with("{\"schema\":\"netan.lot.v1\","));
    assert!(json.ends_with("]}"));
    assert_eq!(json.matches("\"seed\":").count(), 4);
    assert_eq!(json.matches("\"freq_hz\":").count(), 4 + 4 * 4); // mask + 4 devices x 4 points
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    assert!(!json.contains("NaN") && !json.contains("inf"));
}

#[test]
fn lot_csv_rows_and_columns_are_pinned() {
    let report = small_seeded_lot();
    let csv = lot_csv(&report);
    let lines: Vec<&str> = csv.lines().collect();
    // Header + one row per device.
    assert_eq!(lines.len(), 1 + report.len());
    assert_eq!(
        lines[0],
        "seed,verdict,fit_gain,fit_f0_hz,fit_q,cutoff_hz,worst_gain_err_db"
    );
    for (i, row) in lines[1..].iter().enumerate() {
        assert_eq!(row.split(',').count(), 7, "row {row}");
        assert!(row.starts_with(&format!("{i},")), "row {row}");
    }
}

#[test]
fn bode_json_round_trips_the_device_plot() {
    let report = small_seeded_lot();
    let json = bode_json(&report.devices()[0].plot);
    assert!(json.starts_with("{\"schema\":\"netan.bode.v2\",\"points\":["));
    assert_eq!(json.matches("\"freq_hz\":").count(), 4);
    // Fixed-grid sweeps carry round-0 provenance on every point.
    assert_eq!(json.matches("\"round\":0").count(), 4);
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}
