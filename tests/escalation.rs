//! Determinism guarantees of escalated lot runs: a parallel
//! `LotEngine::run_escalated` must be **bit-identical** to the serial
//! reference — same plots, same verdicts, same stage provenance, same
//! budget accounting, same error on failure — for both the ideal and the
//! seeded-CMOS analyzer profiles, across every stage of the schedule and
//! through the budget-exhausted early-stop path.
//!
//! The asserts use `PartialEq` on whole `LotReport`s, i.e. IEEE equality
//! on every `f64` field — no tolerances. The retest set at each stage is
//! a function of verdicts and budget arithmetic only (never of thread
//! completion order), so serial and parallel schedules execute the same
//! per-device instruction streams.

use dut::ActiveRcFilter;
use mixsig::units::{Hertz, Seconds};
use netan::{
    AnalyzerConfig, EscalationSchedule, GainMask, LotEngine, LotPlan, NetanError, SpecVerdict,
    SweepEngine,
};

fn paper_factory(sigma: f64) -> impl Fn(u64) -> ActiveRcFilter + Sync {
    move |seed| {
        ActiveRcFilter::paper_dut()
            .linearized()
            .fabricate(sigma, seed)
    }
}

fn paper_plan() -> LotPlan {
    LotPlan::from_mask(GainMask::paper_lowpass())
}

#[test]
fn parallel_escalated_matches_serial_ideal() {
    // σ = 9 % at a fast M = 30 screen leaves borderline parts ambiguous,
    // so the re-test stages genuinely run.
    let plan = paper_plan();
    let schedule = EscalationSchedule::from_periods(AnalyzerConfig::ideal(), &[30, 60, 120]);
    let seeds: Vec<u64> = (0..8).collect();
    let factory = paper_factory(0.09);

    let serial = LotEngine::serial()
        .run_escalated(&factory, &seeds, &plan, &schedule)
        .unwrap();
    let parallel = LotEngine::with_threads(8)
        .run_escalated(&factory, &seeds, &plan, &schedule)
        .unwrap();
    assert_eq!(serial, parallel);
    assert_eq!(serial.len(), seeds.len());
    // Device order is seed order, regardless of completion order.
    for (d, &seed) in serial.devices().iter().zip(&seeds) {
        assert_eq!(d.seed, seed);
    }
    // The schedule actually escalated someone (σ = 9 % at M = 30 leaves
    // ambiguity by construction) — otherwise this test proves nothing.
    assert!(
        serial.stages().len() > 1,
        "expected at least one re-test stage, got {:?}",
        serial.stages()
    );
    // A nested per-device point engine must not change the bits either.
    let nested = LotEngine::with_threads(3)
        .with_point_engine(SweepEngine::with_threads(2))
        .run_escalated(&factory, &seeds, &plan, &schedule)
        .unwrap();
    assert_eq!(serial, nested);
}

#[test]
fn parallel_escalated_matches_serial_with_seeded_cmos_noise() {
    // The CMOS profile exercises every seeded noise/mismatch source of
    // the analyzer's own hardware; determinism must survive both the
    // device fan-out and the per-stage recalibration.
    let plan = paper_plan();
    let schedule = EscalationSchedule::from_periods(AnalyzerConfig::cmos_035um(7), &[40, 80]);
    let seeds: Vec<u64> = (0..5).collect();
    let factory = paper_factory(0.06);

    let serial = LotEngine::serial()
        .run_escalated(&factory, &seeds, &plan, &schedule)
        .unwrap();
    let parallel = LotEngine::with_threads(8)
        .run_escalated(&factory, &seeds, &plan, &schedule)
        .unwrap();
    assert_eq!(serial, parallel);
}

#[test]
fn budget_exhausted_early_stop_is_deterministic() {
    // A budget that pays for the screening pass plus half a re-test:
    // the observed-cost ledger admits the lowest-seed ambiguous device
    // (re-tests are admitted while `spent < budget`, so the last one
    // may overshoot by its own charge), denies the rest, flags the
    // exhaustion, and does so identically under any schedule.
    let plan = paper_plan();
    let seeds: Vec<u64> = (0..6).collect();
    let factory = paper_factory(0.09);
    let free = EscalationSchedule::from_periods(AnalyzerConfig::ideal(), &[30, 90]);
    let c0 = free.device_stage_time(0, plan.grid()).value();
    let c1 = free.device_stage_time(1, plan.grid()).value();
    let budget = Seconds(seeds.len() as f64 * c0 + 0.5 * c1);
    let schedule = free.clone().with_budget(budget);

    let serial = LotEngine::serial()
        .run_escalated(&factory, &seeds, &plan, &schedule)
        .unwrap();
    let parallel = LotEngine::with_threads(6)
        .run_escalated(&factory, &seeds, &plan, &schedule)
        .unwrap();
    assert_eq!(serial, parallel);

    // The premise: more than one device needed a re-test.
    let ambiguous_after_screen = serial.stages()[0].counts.ambiguous;
    assert!(
        ambiguous_after_screen > 1,
        "need >1 ambiguous device to exercise the early stop, got {ambiguous_after_screen}"
    );
    // Exactly one affordable re-test, awarded in seed order.
    assert!(serial.budget_exhausted());
    assert_eq!(serial.stages().len(), 2);
    assert_eq!(serial.stages()[1].tested, 1);
    let escalated: Vec<u64> = serial
        .devices()
        .iter()
        .filter(|d| d.stage == 1)
        .map(|d| d.seed)
        .collect();
    let first_ambiguous = serial
        .devices()
        .iter()
        .find(|d| d.verdict == SpecVerdict::Ambiguous || d.stage == 1)
        .map(|d| d.seed)
        .unwrap();
    assert_eq!(escalated, vec![first_ambiguous]);
    // The admitted re-test overshoots the budget by at most its own
    // observed charge — never more.
    assert!(serial.spent().value() <= budget.value() + c1 + 1e-12);

    // The free-running schedule on the same lot re-tests every
    // ambiguous device — the budget is the only thing holding back.
    let unbounded = LotEngine::serial()
        .run_escalated(&factory, &seeds, &plan, &free)
        .unwrap();
    assert!(!unbounded.budget_exhausted());
    assert_eq!(unbounded.stages()[1].tested, ambiguous_after_screen);
}

#[test]
fn budget_below_screening_pass_is_rejected_before_simulation() {
    let plan = paper_plan();
    let schedule = EscalationSchedule::from_periods(AnalyzerConfig::ideal(), &[30, 90])
        .with_budget(Seconds(1e-3));
    let err = LotEngine::serial()
        .run_escalated(paper_factory(0.0), &[0, 1, 2], &plan, &schedule)
        .unwrap_err();
    assert!(
        matches!(err, NetanError::BudgetExhausted { .. }),
        "expected BudgetExhausted, got {err:?}"
    );
}

#[test]
fn lowest_index_device_error_wins_under_any_schedule() {
    // Seeds 2 and 5 fabricate into devices with a NaN pole — not
    // simulable. Serial and parallel escalated runs must both report the
    // lowest-index failing device, exactly as an in-order run would.
    let plan = paper_plan();
    let schedule = EscalationSchedule::from_periods(AnalyzerConfig::ideal(), &[30, 60]);
    let seeds: Vec<u64> = (0..8).collect();
    let factory = |seed: u64| {
        if seed == 2 || seed == 5 {
            ActiveRcFilter::new(Hertz(f64::NAN), 0.7, 1.0)
        } else {
            ActiveRcFilter::paper_dut()
                .linearized()
                .fabricate(0.05, seed)
        }
    };
    let expected = NetanError::DeviceNotSimulable { seed: 2 };

    for engine in [
        LotEngine::serial(),
        LotEngine::with_threads(8),
        LotEngine::with_threads(3).with_point_engine(SweepEngine::with_threads(2)),
    ] {
        assert_eq!(
            engine
                .run_escalated(factory, &seeds, &plan, &schedule)
                .unwrap_err(),
            expected,
            "{engine:?}"
        );
    }
}

#[test]
fn adaptive_plan_escalates_on_the_observed_ledger() {
    // Regression: escalating over an adaptive plan used to be rejected
    // with a typed error (and before that, a documented panic). The
    // observed-cost ledger charges each device's actual measurement
    // time, so device-dependent adaptive grids now escalate — slices
    // and ranges alike, serial bit-identical to parallel.
    let plan = LotPlan::adaptive(
        &[],
        GainMask::paper_lowpass(),
        netan::RefinementPolicy::default(),
    );
    let schedule = EscalationSchedule::from_periods(AnalyzerConfig::ideal(), &[30, 90]);
    let factory = paper_factory(0.09);
    let seeds: Vec<u64> = (0..4).collect();

    let serial = LotEngine::serial()
        .run_escalated(&factory, &seeds, &plan, &schedule)
        .unwrap();
    let parallel = LotEngine::with_threads(4)
        .run_escalated(&factory, &seeds, &plan, &schedule)
        .unwrap();
    assert_eq!(serial, parallel);
    assert!(
        serial.stages().len() > 1,
        "expected a re-test stage, got {:?}",
        serial.stages()
    );
    // Adaptive grids are device-dependent: no uniform per-device stage
    // cost, and each stage's time is exactly the seed-order fold of the
    // devices' observed per-stage charges.
    for (s, summary) in serial.stages().iter().enumerate() {
        assert_eq!(summary.device_time, None);
        let fold = serial
            .devices()
            .iter()
            .filter(|d| d.stage_times.len() > s)
            .fold(Seconds(0.0), |acc, d| acc + d.stage_times[s]);
        assert_eq!(summary.time, fold);
    }
    // The range variant agrees device for device and stage for stage
    // (it additionally attaches the shard span).
    let ranged = LotEngine::serial()
        .run_escalated_range(&factory, 0..4, &plan, &schedule)
        .unwrap();
    assert_eq!(ranged.devices(), serial.devices());
    assert_eq!(ranged.stages(), serial.stages());
}

#[test]
fn escalated_shard_partition_merges_to_the_monolithic_report() {
    // Sharding an unbudgeted escalated lot and merging the parts must
    // reproduce the monolithic run bit for bit — stage summaries,
    // carry-forward counts, spent time, everything. (Budgeted schedules
    // gate on the global lot prefix, so they are exempt by design; see
    // the sharding notes in `netan::lot`.)
    let plan = paper_plan();
    let schedule = EscalationSchedule::from_periods(AnalyzerConfig::ideal(), &[30, 90]);
    let factory = paper_factory(0.09);
    let engine = LotEngine::serial();

    let whole = engine
        .run_escalated_range(&factory, 0..6, &plan, &schedule)
        .unwrap();
    // The premise: some shard escalates and some does not, so the merge
    // exercises the stage carry-forward path.
    assert!(whole.stages().len() > 1);

    let merged = [0..2u64, 2..4, 4..6]
        .into_iter()
        .map(|r| {
            engine
                .run_escalated_range(&factory, r, &plan, &schedule)
                .unwrap()
        })
        .reduce(netan::LotReport::merge)
        .unwrap();
    assert_eq!(merged, whole);
    assert_eq!(netan::lot_json(&merged), netan::lot_json(&whole));
}

#[test]
fn single_stage_schedule_equals_plain_run() {
    // A one-stage schedule is exactly `run` with that stage's config —
    // same devices, same provenance, same stage summary, bit for bit.
    let plan = paper_plan();
    let config = AnalyzerConfig::ideal().with_periods(50);
    let seeds: Vec<u64> = (0..4).collect();
    let factory = paper_factory(0.05);

    let plain = LotEngine::serial()
        .run(&factory, &seeds, &plan, config)
        .unwrap();
    let escalated = LotEngine::serial()
        .run_escalated(
            &factory,
            &seeds,
            &plan,
            &EscalationSchedule::new(vec![config]),
        )
        .unwrap();
    // Identical except for the (None, false) budget bookkeeping both
    // carry by default.
    assert_eq!(plain, escalated);
}
