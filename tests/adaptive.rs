//! Integration tests for enclosure-driven adaptive sweep refinement:
//! provenance, determinism, the points-to-equal-accuracy claim, and the
//! adaptive lot plan.

use dut::ActiveRcFilter;
use mixsig::units::{Hertz, Volts};
use netan::{
    log_spaced, reconstruction_error_db, AnalyzerConfig, GainMask, LotEngine, LotPlan, NetanError,
    NetworkAnalyzer, RefinementPolicy, SweepEngine,
};

fn fast_ideal(periods: u32) -> AnalyzerConfig {
    AnalyzerConfig {
        warmup_periods: 10,
        ..AnalyzerConfig::ideal().with_periods(periods)
    }
}

#[test]
fn refined_grid_is_a_superset_with_provenance() {
    let dut = ActiveRcFilter::paper_dut().linearized();
    let mut na = NetworkAnalyzer::new(&dut, fast_ideal(20));
    let seed = log_spaced(Hertz(200.0), Hertz(10_000.0), 5);
    let policy = RefinementPolicy::new(0.3)
        .with_max_points(12)
        .with_max_rounds(3);
    let plot = na.sweep_adaptive(&seed, &policy).unwrap();

    // Every seed frequency survives, tagged round 0.
    for f in &seed {
        let p = plot
            .points()
            .iter()
            .find(|p| p.frequency.value().to_bits() == f.value().to_bits())
            .unwrap_or_else(|| panic!("seed frequency {f} missing from refined grid"));
        assert_eq!(p.round, 0, "seed point at {f} mis-tagged");
    }
    // Refinement actually happened (the Butterworth shoulder bends more
    // than 0.3 dB on a 5-point seed) and stayed within the caps.
    assert!(plot.len() > seed.len(), "no refinement happened");
    assert!(plot.len() <= policy.max_points);
    let rounds: Vec<u32> = plot.points().iter().map(|p| p.round).collect();
    assert!(rounds.iter().any(|&r| r >= 1));
    assert!(rounds.iter().all(|&r| r <= policy.max_rounds));
    // Ordered ascending, no duplicates.
    for w in plot.points().windows(2) {
        assert!(w[0].frequency.value() < w[1].frequency.value());
    }
}

#[test]
fn parallel_adaptive_is_bit_identical_to_serial() {
    let dut = ActiveRcFilter::paper_dut().linearized();
    let seed = log_spaced(Hertz(200.0), Hertz(10_000.0), 5);
    let policy = RefinementPolicy::new(0.3).with_max_points(12);
    for cfg in [
        fast_ideal(20),
        AnalyzerConfig::cmos_035um(7).with_periods(30),
    ] {
        let mut na = NetworkAnalyzer::new(&dut, cfg);
        let serial = na
            .sweep_adaptive_with(&SweepEngine::serial(), &seed, &policy)
            .unwrap();
        let parallel = na
            .sweep_adaptive_with(&SweepEngine::with_threads(4), &seed, &policy)
            .unwrap();
        // PartialEq over f64 fields: bitwise, not approximate.
        assert_eq!(serial, parallel, "profile {:?}", cfg.hardware);
    }
}

#[test]
fn adaptive_matches_fixed_grid_accuracy_with_fewer_points() {
    // The acceptance claim: on the high-Q DUT the adaptive sweep reaches
    // the fixed 20-point grid's worst-case reconstruction error with
    // ≥ 30 % fewer measured points.
    let dut = ActiveRcFilter::new(Hertz(1000.0), 10.0, 1.0);
    let cfg = AnalyzerConfig {
        warmup_periods: 10,
        ..AnalyzerConfig::ideal()
            .with_periods(50)
            .with_va_diff(Volts(0.030))
    };
    let mut na = NetworkAnalyzer::new(&dut, cfg);

    let fixed = na
        .sweep(&log_spaced(Hertz(200.0), Hertz(5_000.0), 20))
        .unwrap();
    let budget = 20 * 7 / 10; // ≥ 30 % fewer than the fixed grid
    let policy = RefinementPolicy::new(0.25).with_max_points(budget);
    let adaptive = na
        .sweep_adaptive(&log_spaced(Hertz(200.0), Hertz(5_000.0), 8), &policy)
        .unwrap();

    let e_fixed = reconstruction_error_db(&fixed, &dut, 256).unwrap();
    let e_adaptive = reconstruction_error_db(&adaptive, &dut, 256).unwrap();
    assert!(adaptive.len() <= budget, "{} points", adaptive.len());
    assert!(
        e_adaptive <= e_fixed,
        "adaptive {e_adaptive:.3} dB ({} pts) vs fixed {e_fixed:.3} dB (20 pts)",
        adaptive.len()
    );
    // The fixed grid visibly undersamples the peak; refinement must
    // recover most of it, not just tie.
    assert!(
        e_fixed > 2.0 && e_adaptive < 0.75 * e_fixed,
        "expected a decisive win: adaptive {e_adaptive:.3} dB vs fixed {e_fixed:.3} dB"
    );
}

#[test]
fn adaptive_lot_plan_refines_and_classifies_like_the_fixed_plan() {
    let mask = GainMask::paper_lowpass();
    let factory = |seed: u64| {
        ActiveRcFilter::paper_dut()
            .linearized()
            .fabricate(0.03, seed)
    };
    let seeds = [0u64, 1, 2, 3];
    let cfg = fast_ideal(30);

    let fixed_plan = LotPlan::from_mask(mask.clone());
    let policy = RefinementPolicy::new(0.3)
        .with_max_points(10)
        .with_max_rounds(2);
    let adaptive_plan = LotPlan::adaptive(&[], mask, policy);
    assert_eq!(adaptive_plan.refinement(), Some(&policy));
    assert_eq!(fixed_plan.refinement(), None);

    let fixed = LotEngine::serial()
        .run(factory, &seeds, &fixed_plan, cfg)
        .unwrap();
    let adaptive = LotEngine::serial()
        .run(factory, &seeds, &adaptive_plan, cfg)
        .unwrap();

    for (df, da) in fixed.devices().iter().zip(adaptive.devices()) {
        // The refined plot is a superset of the mask grid...
        assert!(da.plot.len() >= df.plot.len(), "seed {}", df.seed);
        for f in adaptive_plan.grid() {
            assert!(
                da.plot
                    .points()
                    .iter()
                    .any(|p| p.frequency.value().to_bits() == f.value().to_bits()),
                "seed {}: grid frequency {f} missing",
                df.seed
            );
        }
        // ...and mask frequencies measure identically (same config, same
        // deterministic simulation), so the verdict cannot change.
        assert_eq!(df.verdict, da.verdict, "seed {}", df.seed);
    }

    // Device-parallel adaptive lots stay bit-identical to serial.
    let parallel = LotEngine::with_threads(4)
        .run(factory, &seeds, &adaptive_plan, cfg)
        .unwrap();
    assert_eq!(adaptive, parallel);
}

#[test]
fn adaptive_rejects_bad_seeds_before_simulation() {
    let dut = ActiveRcFilter::paper_dut().linearized();
    let mut na = NetworkAnalyzer::new(&dut, fast_ideal(20));
    let policy = RefinementPolicy::default();
    assert_eq!(
        na.sweep_adaptive(&[], &policy).unwrap_err(),
        NetanError::EmptySweep
    );
    let err = na
        .sweep_adaptive(&[Hertz(1000.0), Hertz(-2.0)], &policy)
        .unwrap_err();
    assert_eq!(err, NetanError::InvalidFrequency { hz_millis: -2000 });
    // Rejected before any calibration was spent.
    assert!(na.calibration().is_none());
}

#[test]
fn unsorted_seed_with_duplicates_is_normalized() {
    let dut = ActiveRcFilter::paper_dut().linearized();
    let mut na = NetworkAnalyzer::new(&dut, fast_ideal(20));
    let policy = RefinementPolicy::new(5.0).with_max_rounds(0); // no refinement
    let seed = [Hertz(5000.0), Hertz(500.0), Hertz(5000.0), Hertz(1000.0)];
    let plot = na.sweep_adaptive(&seed, &policy).unwrap();
    let freqs: Vec<f64> = plot.points().iter().map(|p| p.frequency.value()).collect();
    assert_eq!(freqs, vec![500.0, 1000.0, 5000.0]);
}
