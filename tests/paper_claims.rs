//! The paper's headline claims, as executable assertions.
//!
//! * frequency range up to 20 kHz with a dynamic range of 70 dB,
//! * inherent synchronization: N = 96 at every master-clock setting,
//! * evaluator accuracy selectable via M (Fig. 9),
//! * amplitude programming through `VA+ − VA−` (Fig. 8a),
//! * generator purity ≈ 70 dB SFDR with CMOS non-idealities (Fig. 8b).

use ate::MultitoneAwg;
use dsp::tone::Tone;
use mixsig::clock::MasterClock;
use mixsig::units::{Hertz, Volts};
use sdeval::{EvaluatorConfig, SinewaveEvaluator};
use sigen::{GeneratorConfig, GeneratorSpectrum, SinewaveGenerator};

fn tone_source(f: f64, a: f64, phi: f64) -> impl FnMut() -> f64 {
    let t = Tone::new(f, a, phi);
    let mut n = 0usize;
    move || {
        let v = t.sample(n);
        n += 1;
        v
    }
}

#[test]
fn dynamic_range_70db_at_20khz() {
    // A tone 70 dB below full scale (1 V reference → 0.316 mV), at the
    // N = 96 normalized frequency the analyzer uses at f_wave = 20 kHz.
    // With enough evaluation periods the evaluator must both detect it and
    // bound it away from zero.
    let a_small = 10f64.powf(-70.0 / 20.0);
    let mut ev = SinewaveEvaluator::new(EvaluatorConfig::ideal());
    let mut src = tone_source(1.0 / 96.0, a_small, 0.4);
    let m = ev.measure_harmonic(&mut src, 1, 40_000).unwrap();
    assert!(m.amplitude.contains(a_small), "{}", m.amplitude);
    // Detected: the lower bound is above zero and within 3 dB of truth.
    assert!(m.amplitude.lo > a_small * 0.7, "{}", m.amplitude);
    assert!((20.0 * (m.amplitude.est / a_small).log10()).abs() < 1.0);
}

#[test]
fn oversampling_ratio_constant_over_the_audio_sweep() {
    for f_wave in [100.0, 1000.0, 10_000.0, 20_000.0] {
        let clk = MasterClock::for_stimulus(Hertz(f_wave));
        let n = clk.frequency_hz() / clk.stimulus_frequency().value();
        assert!((n - 96.0).abs() < 1e-9, "N drifted at {f_wave} Hz: {n}");
    }
}

#[test]
fn fig9_error_decreases_with_m_and_harmonics_separated() {
    // The Fig. 9 experiment shape: measure the three-tone ATE stimulus at
    // increasing M; the worst-case error bound must shrink ~1/M and the
    // three estimates must sit 20/40 dB apart.
    let mut widths = Vec::new();
    for m in [20u32, 100, 500] {
        let mut awg = MultitoneAwg::fig9_stimulus(96);
        let mut ev = SinewaveEvaluator::new(EvaluatorConfig::ideal());
        let mut src = awg.source();
        let ms = ev.measure_harmonics(&mut src, &[1, 2, 3], m).unwrap();
        widths.push(ms[0].amplitude.width());
        if m == 500 {
            let db12 = 20.0 * (ms[0].amplitude.est / ms[1].amplitude.est).log10();
            let db13 = 20.0 * (ms[0].amplitude.est / ms[2].amplitude.est).log10();
            assert!((db12 - 20.0).abs() < 0.5, "A1/A2 {db12} dB");
            assert!((db13 - 40.0).abs() < 1.0, "A1/A3 {db13} dB");
        }
    }
    assert!(widths[0] > 4.0 * widths[1]);
    assert!(widths[1] > 4.0 * widths[2]);
}

#[test]
fn fig8a_amplitude_programming() {
    // VA = 150/250/300 mV must produce outputs in ratio 300:500:600 at
    // 62.5 kHz (f_eva = 6 MHz), matching paper Fig. 8a.
    let clk = MasterClock::from_hz(6.0e6);
    assert_eq!(clk.stimulus_frequency().value(), 62_500.0);
    let mut amplitudes = Vec::new();
    for va in [0.150, 0.250, 0.300] {
        let mut generator = SinewaveGenerator::new(GeneratorConfig::ideal(clk, Volts(va)));
        generator.settle(40);
        let w = generator.waveform_at_feva(96 * 16);
        let (a, _) = dsp::goertzel::tone_amplitude_phase(&w, 1.0 / 96.0);
        amplitudes.push(a);
    }
    assert!((amplitudes[0] - 0.30).abs() < 0.02, "{}", amplitudes[0]);
    assert!((amplitudes[1] - 0.50).abs() < 0.03, "{}", amplitudes[1]);
    assert!((amplitudes[2] - 0.60).abs() < 0.04, "{}", amplitudes[2]);
}

#[test]
fn fig8b_generator_purity_with_cmos_nonidealities() {
    // Paper: SFDR = 70 dB, THD = 67 dB. Averaged over mismatch draws our
    // behavioral model must land in the same decade (≥ 55 dB each).
    let clk = MasterClock::from_hz(6.0e6);
    let mut sfdr_sum = 0.0;
    let mut thd_sum = 0.0;
    let seeds = 4u64;
    for seed in 0..seeds {
        let mut generator =
            SinewaveGenerator::new(GeneratorConfig::cmos_035um(clk, Volts(0.25), seed));
        let spec = GeneratorSpectrum::measure(&mut generator, 64, 8);
        sfdr_sum += spec.sfdr_db();
        thd_sum += spec.thd_db();
    }
    let sfdr = sfdr_sum / seeds as f64;
    let thd = thd_sum / seeds as f64;
    assert!(sfdr > 55.0 && sfdr < 95.0, "mean SFDR {sfdr}");
    assert!(thd > 55.0 && thd < 95.0, "mean THD {thd}");
}

#[test]
fn evaluator_repeatability_across_25_runs() {
    // Fig. 9 repeats every measurement 25 times; on the bench each run
    // starts at an arbitrary stimulus phase. The run-to-run scatter is set
    // by the bounded quantization residual, so it must shrink ~1/M, and
    // every run must stay inside its own guaranteed enclosure.
    let truth = 0.2;
    let mut errors_small_m = Vec::new();
    let mut errors_large_m = Vec::new();
    for run in 0..25u64 {
        let phase = run as f64 * 0.251; // arbitrary bench start phase
        for (m, errs) in [(20u32, &mut errors_small_m), (200u32, &mut errors_large_m)] {
            let mut ev = SinewaveEvaluator::new(EvaluatorConfig::cmos_035um(run));
            let mut src = tone_source(1.0 / 96.0, truth, phase);
            let meas = ev.measure_harmonic(&mut src, 1, m).unwrap();
            errs.push((meas.amplitude.est - truth).abs());
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    // ~10x smaller scatter at 10x the periods (plus a small deterministic
    // finite-gain scale bias common to both).
    assert!(
        mean(&errors_small_m) > 1.5 * mean(&errors_large_m),
        "small-M {} vs large-M {}",
        mean(&errors_small_m),
        mean(&errors_large_m)
    );
    assert!(mean(&errors_large_m) < 2e-3, "{}", mean(&errors_large_m));
}

#[test]
fn audio_range_sweep_all_points_valid() {
    // "suitable for the characterization of analog circuits in the
    // frequency range up to 20 kHz": every point of a 100 Hz – 20 kHz sweep
    // must produce a finite, bounded measurement.
    use dut::ActiveRcFilter;
    use netan::{AnalyzerConfig, NetworkAnalyzer};
    let device = ActiveRcFilter::paper_dut().linearized();
    let mut analyzer = NetworkAnalyzer::new(&device, AnalyzerConfig::ideal().with_periods(50));
    let freqs = netan::log_spaced(Hertz(100.0), Hertz(20_000.0), 7);
    let plot = analyzer.sweep(&freqs).unwrap();
    for p in plot.points() {
        assert!(p.gain_db.est.is_finite());
        assert!(p.gain.width().is_finite() && p.gain.width() > 0.0);
        assert!(p.phase_deg.est.is_finite());
    }
    let coverage = plot.gain_coverage().expect("non-empty sweep");
    assert!(coverage > 0.9, "{coverage}");
}
