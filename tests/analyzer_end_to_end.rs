//! End-to-end integration tests: generator → board → DUT → evaluator →
//! analyzer DSP, across DUT shapes and hardware profiles.

use dut::{ActiveRcFilter, Dut, LinearDut};
use mixsig::units::{Hertz, Volts};
use netan::{AnalyzerConfig, GainMask, NetworkAnalyzer, SpecVerdict};

/// The analyzer must track the analytic response of a DUT within a small
/// absolute tolerance across its whole passband-to-stopband range.
fn assert_tracks_dut(device: &dyn Dut, freqs: &[f64], tol_db: f64, tol_deg: f64) {
    let mut analyzer = NetworkAnalyzer::new(device, AnalyzerConfig::ideal());
    for &f in freqs {
        let p = analyzer.measure_point(Hertz(f)).unwrap();
        let gain_err = (p.gain_db.est - p.ideal_gain_db).abs();
        assert!(
            gain_err < tol_db,
            "f={f}: gain {} vs ideal {} (err {gain_err})",
            p.gain_db.est,
            p.ideal_gain_db
        );
        // Compare phases modulo 360°.
        let mut phase_err = (p.phase_deg.est - p.ideal_phase_deg).abs() % 360.0;
        if phase_err > 180.0 {
            phase_err = 360.0 - phase_err;
        }
        assert!(
            phase_err < tol_deg,
            "f={f}: phase {} vs ideal {} (err {phase_err})",
            p.phase_deg.est,
            p.ideal_phase_deg
        );
    }
}

#[test]
fn tracks_paper_lowpass() {
    let device = ActiveRcFilter::paper_dut().linearized();
    assert_tracks_dut(&device, &[200.0, 500.0, 1000.0, 2000.0, 5000.0], 0.35, 3.0);
}

#[test]
fn tracks_bandpass() {
    let device = LinearDut::bandpass(Hertz(2000.0), 2.0, 1.0);
    assert_tracks_dut(&device, &[500.0, 1000.0, 2000.0, 4000.0, 8000.0], 0.4, 3.0);
}

#[test]
fn tracks_highpass() {
    let device = LinearDut::highpass(Hertz(500.0), std::f64::consts::FRAC_1_SQRT_2, 1.0);
    assert_tracks_dut(&device, &[500.0, 1000.0, 4000.0, 10_000.0], 0.4, 3.0);
}

#[test]
fn tracks_first_order() {
    let device = LinearDut::first_order_lowpass(Hertz(1000.0), 2.0);
    assert_tracks_dut(&device, &[100.0, 1000.0, 10_000.0], 0.35, 3.0);
}

#[test]
fn cmos_hardware_still_tracks_the_dut() {
    // With mismatched capacitors, finite-gain op-amps and noise, absolute
    // accuracy degrades but the Bode shape must survive (paper robustness
    // claim). Gain is relative to the calibrated stimulus, so generator
    // gain errors cancel.
    let device = ActiveRcFilter::paper_dut().linearized();
    for seed in [1u64, 2, 3] {
        let mut analyzer = NetworkAnalyzer::new(&device, AnalyzerConfig::cmos_035um(seed));
        for &f in &[200.0, 1000.0, 5000.0] {
            let p = analyzer.measure_point(Hertz(f)).unwrap();
            let err = (p.gain_db.est - p.ideal_gain_db).abs();
            assert!(err < 1.0, "seed {seed}, f={f}: err {err} dB");
        }
    }
}

#[test]
fn spec_mask_screens_good_and_bad_devices() {
    let mask = GainMask::paper_lowpass();
    let freqs = mask.frequencies();

    // A nominal device passes.
    let good = ActiveRcFilter::paper_dut().linearized();
    let mut analyzer = NetworkAnalyzer::new(&good, AnalyzerConfig::ideal());
    let verdict = mask.classify(analyzer.sweep(&freqs).unwrap().points());
    assert_eq!(verdict, SpecVerdict::Pass);

    // A device with the cut-off at 2 kHz violates the 1 kHz mask point.
    let bad = ActiveRcFilter::new(Hertz(2000.0), std::f64::consts::FRAC_1_SQRT_2, 1.0);
    let mut analyzer = NetworkAnalyzer::new(&bad, AnalyzerConfig::ideal());
    let verdict = mask.classify(analyzer.sweep(&freqs).unwrap().points());
    assert_eq!(verdict, SpecVerdict::Fail);
}

#[test]
fn distortion_mode_agrees_with_scope() {
    use ate::{DemoBoard, DigitalOscilloscope, SignalPath};
    use mixsig::clock::MasterClock;
    use sigen::GeneratorConfig;

    let device = ActiveRcFilter::paper_dut();
    let f_test = Hertz(1600.0);

    // Analyzer path.
    let cfg = AnalyzerConfig::ideal()
        .with_periods(400)
        .with_va_diff(Volts(0.2));
    let mut analyzer = NetworkAnalyzer::new(&device, cfg);
    let report = netan::DistortionReport::new(analyzer.measure_harmonics(f_test, 3).unwrap());

    // Scope path.
    let clk = MasterClock::for_stimulus(f_test);
    let mut board = DemoBoard::new(GeneratorConfig::ideal(clk, Volts(0.2)), &device);
    board.set_path(SignalPath::Dut);
    board.warm_up(40);
    let mut source = board.source();
    let scope = DigitalOscilloscope::wavesurfer().measure_harmonics(&mut source, 1.0 / 96.0, 4);

    let d2 = (report.hd_dbc(2).est - scope.harmonics_dbc[0]).abs();
    let d3 = (report.hd_dbc(3).est - scope.harmonics_dbc[1]).abs();
    assert!(d2 < 1.5, "H2 disagreement {d2} dB");
    assert!(d3 < 1.5, "H3 disagreement {d3} dB");
}

#[test]
fn calibration_is_reused_across_sweep() {
    let device = ActiveRcFilter::paper_dut().linearized();
    let mut analyzer = NetworkAnalyzer::new(&device, AnalyzerConfig::ideal());
    let cal1 = analyzer.calibrate().unwrap();
    let _ = analyzer.measure_point(Hertz(500.0)).unwrap();
    let _ = analyzer.measure_point(Hertz(5000.0)).unwrap();
    // Calibration unchanged by measurements.
    assert_eq!(analyzer.calibration().unwrap(), cal1);
}

#[test]
fn bode_csv_has_a_row_per_point() {
    let device = ActiveRcFilter::paper_dut().linearized();
    let mut analyzer = NetworkAnalyzer::new(&device, AnalyzerConfig::ideal().with_periods(50));
    let freqs = netan::log_spaced(Hertz(200.0), Hertz(5000.0), 4);
    let plot = analyzer.sweep(&freqs).unwrap();
    let csv = netan::bode_csv(&plot);
    assert_eq!(csv.lines().count(), 5); // header + 4 rows
}
