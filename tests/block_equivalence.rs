//! Block-pipeline equivalence: every block method must be bit-identical
//! to the per-sample reference it batches — the same contract PR 1/2
//! asserted for parallel vs. serial scheduling, now for batched vs.
//! per-sample stepping.

use ate::{DemoBoard, MultitoneAwg, SignalPath};
use dsp::tone::Tone;
use dut::{ActiveRcFilter, Bypass, Dut, LinearDut, NonlinearDut, Polynomial};
use mixsig::clock::MasterClock;
use mixsig::units::{Hertz, Volts};
use sdeval::{EvaluatorConfig, FnSource, SinewaveEvaluator};
use sigen::GeneratorConfig;

/// Drives two fresh simulators of `dut` over the same record — one per
/// sample, one in uneven blocks — and demands exact equality.
fn assert_dut_block_equivalence(label: &str, dut: &dyn Dut) {
    let fs = Hertz(96_000.0);
    let x: Vec<f64> = Tone::new(1.0 / 96.0, 0.4, 0.3).samples(96 * 7 + 29);
    let mut by_sample = dut.instantiate(fs);
    let mut by_block = dut.instantiate(fs);
    let want: Vec<f64> = x.iter().map(|&u| by_sample.step(u)).collect();
    let mut got = vec![0.0; x.len()];
    for (xi, yi) in x.chunks(31).zip(got.chunks_mut(31)) {
        by_block.process_block(xi, yi);
    }
    assert_eq!(want, got, "{label}: block output diverged");
    // The compatibility `process` wrapper rides the same path.
    by_sample.reset();
    by_block.reset();
    let processed = by_block.process(&x);
    let stepped: Vec<f64> = x.iter().map(|&u| by_sample.step(u)).collect();
    assert_eq!(stepped, processed, "{label}: process() diverged");
}

#[test]
fn every_dut_sim_block_path_matches_per_sample() {
    assert_dut_block_equivalence("bypass", &Bypass);
    assert_dut_block_equivalence(
        "linear lowpass",
        &LinearDut::lowpass(Hertz(1000.0), std::f64::consts::FRAC_1_SQRT_2, 1.0),
    );
    assert_dut_block_equivalence("linear notch", &LinearDut::notch(Hertz(1000.0), 2.0));
    assert_dut_block_equivalence(
        "first-order",
        &LinearDut::first_order_lowpass(Hertz(500.0), 0.8),
    );
    // Order-3 state space (parasitic pole) + output nonlinearity.
    assert_dut_block_equivalence("active-rc paper DUT", &ActiveRcFilter::paper_dut());
    assert_dut_block_equivalence(
        "nonlinear wrapper",
        &NonlinearDut::new(
            LinearDut::bandpass(Hertz(2000.0), 3.0, 1.0),
            Polynomial::new(0.02, 0.05),
        ),
    );
}

#[test]
fn awg_block_path_matches_per_sample() {
    let mut by_sample = MultitoneAwg::fig9_stimulus(96);
    let mut by_block = MultitoneAwg::fig9_stimulus(96);
    let want: Vec<f64> = (0..96 * 3 + 11).map(|_| by_sample.next_sample()).collect();
    let mut got = vec![0.0; want.len()];
    for chunk in got.chunks_mut(23) {
        by_block.fill_block(chunk);
    }
    assert_eq!(want, got);
    assert_eq!(by_sample.position(), by_block.position());
}

#[test]
fn board_block_path_matches_per_sample_on_both_paths() {
    let clk = MasterClock::for_stimulus(Hertz(1000.0));
    let dut = ActiveRcFilter::paper_dut();
    for path in [SignalPath::Dut, SignalPath::CalibrationBypass] {
        let mk = || {
            let mut b = DemoBoard::new(GeneratorConfig::cmos_035um(clk, Volts(0.15), 3), &dut);
            b.set_path(path);
            b
        };
        let mut by_sample = mk();
        let mut by_block = mk();
        let want: Vec<f64> = (0..96 * 4 + 13).map(|_| by_sample.next_sample()).collect();
        let mut got = vec![0.0; want.len()];
        for chunk in got.chunks_mut(37) {
            by_block.fill_block(chunk);
        }
        assert_eq!(want, got, "path {path:?}");
    }
}

#[test]
fn evaluator_block_acquisition_matches_per_sample_wrapper() {
    // The same physical stream measured through the per-sample FnMut
    // wrapper and through the board's BlockSource implementation.
    let clk = MasterClock::for_stimulus(Hertz(1000.0));
    let dut = ActiveRcFilter::paper_dut();
    for (gen_cfg, eval_cfg) in [
        (
            GeneratorConfig::ideal(clk, Volts(0.15)),
            EvaluatorConfig::ideal(),
        ),
        (
            GeneratorConfig::cmos_035um(clk, Volts(0.15), 21),
            EvaluatorConfig::cmos_035um(21),
        ),
    ] {
        let mut board_a = DemoBoard::new(gen_cfg.clone(), &dut);
        board_a.warm_up(10);
        let mut ev_a = SinewaveEvaluator::new(eval_cfg.clone());
        let mut src = board_a.source();
        let want = ev_a.measure_harmonic(&mut src, 1, 50).unwrap();

        let mut board_b = DemoBoard::new(gen_cfg, &dut);
        board_b.warm_up(10);
        let mut ev_b = SinewaveEvaluator::new(eval_cfg);
        let got = ev_b.measure_harmonic_blocks(&mut board_b, 1, 50).unwrap();
        assert_eq!(want, got);
    }
}

#[test]
fn dc_block_acquisition_matches_per_sample_wrapper() {
    let mut ev_a = SinewaveEvaluator::new(EvaluatorConfig::cmos_035um(4));
    let mut src = || 0.27;
    let want = ev_a.measure_dc(&mut src, 40).unwrap();

    let mut ev_b = SinewaveEvaluator::new(EvaluatorConfig::cmos_035um(4).with_block_samples(7));
    let mut closure = || 0.27;
    let got = ev_b
        .measure_dc_blocks(&mut FnSource(&mut closure), 40)
        .unwrap();
    assert_eq!(want, got);
}
