//! Property-based tests across crate boundaries: the guarantees the
//! signature DSP makes must hold for *arbitrary* inputs, not just the
//! hand-picked ones.

use dsp::tone::{Multitone, Tone};
use proptest::prelude::*;
use sdeval::{EvaluatorConfig, SinewaveEvaluator};

fn source_of(mt: Multitone) -> impl FnMut() -> f64 {
    let mut n = 0usize;
    move || {
        let v = mt.sample(n);
        n += 1;
        v
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case runs a full evaluator acquisition
        ..ProptestConfig::default()
    })]

    /// Paper eq. (4): the amplitude enclosure must contain the true
    /// amplitude for any tone within the modulator's stable range and any
    /// even M — the ε ∈ [−4, 4] bound is *hard*, not statistical.
    #[test]
    fn amplitude_enclosure_always_contains_truth(
        a in 1.0e-3..0.75f64,
        phi in -3.1f64..3.1,
        m_half in 1u32..60,
    ) {
        let m = 2 * m_half;
        let mut ev = SinewaveEvaluator::new(EvaluatorConfig::ideal());
        let mut src = source_of(Multitone::new(0.0).with_tone(Tone::new(1.0 / 96.0, a, phi)));
        let meas = ev.measure_harmonic(&mut src, 1, m).unwrap();
        prop_assert!(
            meas.amplitude.contains(a),
            "a={a}, φ={phi}, M={m}: {}", meas.amplitude
        );
    }

    /// Paper eq. (5): same for the phase enclosure, whenever the signal is
    /// large enough for the phase to be constrained at all.
    #[test]
    fn phase_enclosure_contains_truth(
        a in 0.05..0.7f64,
        phi in -3.0f64..3.0,
        m_half in 5u32..50,
    ) {
        let m = 2 * m_half;
        let mut ev = SinewaveEvaluator::new(EvaluatorConfig::ideal());
        let mut src = source_of(Multitone::new(0.0).with_tone(Tone::new(1.0 / 96.0, a, phi)));
        let meas = ev.measure_harmonic(&mut src, 1, m).unwrap();
        // Compare modulo 2π.
        let wrapped = dsp::goertzel::wrap_phase(phi - meas.phase.est);
        let shifted_truth = meas.phase.est + wrapped;
        prop_assert!(
            meas.phase.lo <= shifted_truth && shifted_truth <= meas.phase.hi,
            "a={a}, φ={phi}, M={m}: {} truth {shifted_truth}", meas.phase
        );
    }

    /// Paper eq. (3): DC enclosure contains the true level for any DC in
    /// range.
    #[test]
    fn dc_enclosure_contains_truth(b in -0.7f64..0.7, m_half in 1u32..50) {
        let m = 2 * m_half;
        let mut ev = SinewaveEvaluator::new(EvaluatorConfig::ideal());
        let mut src = || b;
        let meas = ev.measure_dc(&mut src, m).unwrap();
        prop_assert!(meas.level.contains(b), "B={b}, M={m}: {}", meas.level);
    }

    /// A second tone at a *different, non-harmonic* admissible frequency
    /// must not corrupt the k = 1 amplitude beyond its error bound growth
    /// (square-wave demodulation folds only odd multiples of k).
    #[test]
    fn even_harmonic_interferer_rejected(
        a1 in 0.1..0.5f64,
        a2 in 0.0..0.2f64,
        phi2 in -3.0f64..3.0,
    ) {
        let mt = Multitone::new(0.0)
            .with_tone(Tone::new(1.0 / 96.0, a1, 0.7))
            .with_tone(Tone::new(2.0 / 96.0, a2, phi2));
        let mut ev = SinewaveEvaluator::new(EvaluatorConfig::ideal());
        let mut src = source_of(mt);
        let meas = ev.measure_harmonic(&mut src, 1, 100).unwrap();
        prop_assert!(
            (meas.amplitude.est - a1).abs() < 5e-3,
            "a1={a1}, a2={a2}: {}", meas.amplitude
        );
    }
}

mod interval_properties {
    use proptest::prelude::*;
    use sdeval::Bounded;

    proptest! {
        /// Interval ratio is a valid enclosure: for any x ∈ A and y ∈ B,
        /// x/y ∈ A/B.
        #[test]
        fn ratio_encloses_pointwise(
            a_lo in 0.1..10.0f64, a_w in 0.0..5.0f64,
            b_lo in 0.1..10.0f64, b_w in 0.0..5.0f64,
            ta in 0.0..1.0f64, tb in 0.0..1.0f64,
        ) {
            let a = Bounded::new(a_lo, a_lo + a_w / 2.0, a_lo + a_w);
            let b = Bounded::new(b_lo, b_lo + b_w / 2.0, b_lo + b_w);
            let x = a.lo + ta * (a.hi - a.lo);
            let y = b.lo + tb * (b.hi - b.lo);
            let r = a.ratio(&b);
            prop_assert!(r.lo <= x / y && x / y <= r.hi);
        }

        /// Interval difference is a valid enclosure.
        #[test]
        fn minus_encloses_pointwise(
            a_lo in -10.0..10.0f64, a_w in 0.0..5.0f64,
            b_lo in -10.0..10.0f64, b_w in 0.0..5.0f64,
            ta in 0.0..1.0f64, tb in 0.0..1.0f64,
        ) {
            let a = Bounded::new(a_lo, a_lo + a_w / 2.0, a_lo + a_w);
            let b = Bounded::new(b_lo, b_lo + b_w / 2.0, b_lo + b_w);
            let x = a.lo + ta * (a.hi - a.lo);
            let y = b.lo + tb * (b.hi - b.lo);
            let d = a.minus(&b);
            prop_assert!(d.lo <= x - y + 1e-12 && x - y <= d.hi + 1e-12);
        }

        /// Monotonic maps preserve enclosure ordering.
        #[test]
        fn map_monotonic_preserves_order(lo in 0.01..10.0f64, w in 0.0..5.0f64) {
            let b = Bounded::new(lo, lo + w / 2.0, lo + w);
            let m = b.map_monotonic(|x| x.ln());
            prop_assert!(m.lo <= m.est && m.est <= m.hi);
        }
    }
}

mod dsp_properties {
    use dsp::fft::{fft_real, ifft_in_place};
    use dsp::goertzel::dft_bin;
    use proptest::prelude::*;

    proptest! {
        /// FFT round trip is the identity for arbitrary real records.
        #[test]
        fn fft_ifft_identity(data in proptest::collection::vec(-1.0e3..1.0e3f64, 64)) {
            let mut spec = fft_real(&data).unwrap();
            ifft_in_place(&mut spec).unwrap();
            for (orig, rec) in data.iter().zip(&spec) {
                prop_assert!((orig - rec.re).abs() < 1e-6);
                prop_assert!(rec.im.abs() < 1e-6);
            }
        }

        /// Goertzel/DFT-bin equals the FFT bin for arbitrary records.
        #[test]
        fn dft_bin_matches_fft(data in proptest::collection::vec(-10.0..10.0f64, 128), k in 0usize..64) {
            let spec = fft_real(&data).unwrap();
            let g = dft_bin(&data, k as f64 / 128.0);
            prop_assert!((spec[k] - g).abs() < 1e-8);
        }

        /// Parseval holds for arbitrary records.
        #[test]
        fn parseval(data in proptest::collection::vec(-5.0..5.0f64, 256)) {
            let time: f64 = data.iter().map(|v| v * v).sum();
            let spec = fft_real(&data).unwrap();
            let freq: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / 256.0;
            prop_assert!((time - freq).abs() <= 1e-9 * time.max(1.0));
        }
    }
}

mod lot_properties {
    use dut::ActiveRcFilter;
    use netan::{AnalyzerConfig, GainMask, LotEngine, LotPlan, LotReport, SpecVerdict};
    use proptest::prelude::*;

    /// A parallel screening run over `lot` devices fabricated at `sigma`
    /// from `seed_base` (fast settings: minimal mask grid, `M = 50`).
    fn screening(seed_base: u64, sigma: f64, lot: usize) -> LotReport {
        let plan = LotPlan::from_mask(GainMask::paper_lowpass());
        let seeds: Vec<u64> = (0..lot as u64).map(|i| seed_base + i).collect();
        LotEngine::with_threads(4)
            .run(
                move |seed| {
                    ActiveRcFilter::paper_dut()
                        .linearized()
                        .fabricate(sigma, seed)
                },
                &seeds,
                &plan,
                AnalyzerConfig::ideal().with_periods(50),
            )
            .expect("lot run failed")
    }

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 5, // each case screens a whole lot
            ..ProptestConfig::default()
        })]

        /// The verdict histogram is a partition: pass + fail + ambiguous
        /// always sums to the lot size, and the yield enclosure is a
        /// valid sub-interval of [0, 1].
        #[test]
        fn yield_counts_sum_to_lot_size(
            seed_base in 0u64..100_000,
            sigma in 0.0..0.08f64,
        ) {
            let report = screening(seed_base, sigma, 5);
            let c = report.counts();
            prop_assert_eq!(c.total(), report.len());
            prop_assert_eq!(c.pass + c.fail + c.ambiguous, 5);
            let (lo, hi) = report.yield_bounds().expect("non-empty lot has a yield");
            prop_assert!((0.0..=1.0).contains(&lo) && lo <= hi && hi <= 1.0,
                "yield bounds [{lo}, {hi}]");
        }

        /// An `Ambiguous` device is exactly one whose measurement cannot
        /// decide the bin: some mask point's gain enclosure must contain
        /// (straddle) a mask limit.
        #[test]
        fn ambiguous_devices_straddle_the_mask(
            seed_base in 0u64..100_000,
            sigma in 0.02..0.10f64,
        ) {
            let report = screening(seed_base, sigma, 4);
            let mask = GainMask::paper_lowpass();
            for d in report.devices() {
                if d.verdict != SpecVerdict::Ambiguous {
                    continue;
                }
                let straddles = mask.points().iter().any(|mp| {
                    let p = d.plot.points().iter()
                        .find(|p| p.frequency == mp.frequency)
                        .expect("mask frequency was measured");
                    p.gain_db.contains(mp.min_db) || p.gain_db.contains(mp.max_db)
                });
                prop_assert!(straddles,
                    "seed {} is Ambiguous but no enclosure straddles a limit", d.seed);
            }
        }

        /// Zero-sigma fabrication is the identity: every device in the
        /// lot is the nominal part, so every characterization — plot,
        /// verdict, fitted summary — must be byte-identical.
        #[test]
        fn zero_sigma_lot_classifies_identically(seed_base in 0u64..100_000) {
            let report = screening(seed_base, 0.0, 4);
            let first = &report.devices()[0];
            for d in report.devices() {
                prop_assert_eq!(&d.verdict, &first.verdict);
                prop_assert!(d.plot == first.plot, "zero-sigma plots diverged");
                prop_assert!(d.fit == first.fit, "zero-sigma fits diverged");
            }
        }
    }
}

mod escalation_properties {
    use dut::ActiveRcFilter;
    use mixsig::units::Seconds;
    use netan::{
        AnalyzerConfig, EscalationSchedule, GainMask, LotEngine, LotPlan, LotReport, SpecVerdict,
    };
    use proptest::prelude::*;

    /// Fast escalation settings: short warm-up, M = 20 → 40 → 80 over the
    /// minimal mask grid.
    fn stage_base() -> AnalyzerConfig {
        AnalyzerConfig {
            warmup_periods: 10,
            ..AnalyzerConfig::ideal()
        }
    }

    fn schedule(budget_screens: f64, plan: &LotPlan, lot: usize) -> EscalationSchedule {
        let s = EscalationSchedule::from_periods(stage_base(), &[20, 40, 80]);
        // The budget is expressed as a multiple of the full-lot screening
        // cost, so `budget_screens = 1.0` means "stage 0 only".
        let c0 = s.device_stage_time(0, plan.grid()).value();
        let budget = Seconds(budget_screens * lot as f64 * c0);
        s.with_budget(budget)
    }

    fn factory(sigma: f64) -> impl Fn(u64) -> ActiveRcFilter + Sync {
        move |seed| {
            ActiveRcFilter::paper_dut()
                .linearized()
                .fabricate(sigma, seed)
        }
    }

    fn escalated(seed_base: u64, sigma: f64, lot: usize, budget_screens: f64) -> LotReport {
        let plan = LotPlan::from_mask(GainMask::paper_lowpass());
        let seeds: Vec<u64> = (0..lot as u64).map(|i| seed_base + i).collect();
        LotEngine::with_threads(4)
            .run_escalated(
                factory(sigma),
                &seeds,
                &plan,
                &schedule(budget_screens, &plan, lot),
            )
            .expect("escalated lot run failed")
    }

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 5, // each case screens (and partially re-tests) a whole lot
            ..ProptestConfig::default()
        })]

        /// A later stage never flips a decided verdict: every device the
        /// stage-0 screen binned `Pass`/`Fail` keeps its bit-identical
        /// stage-0 report, and only stage-0-`Ambiguous` devices escalate.
        #[test]
        fn later_stages_only_resolve_ambiguity(
            seed_base in 0u64..100_000,
            sigma in 0.04..0.12f64,
        ) {
            let lot = 4;
            let plan = LotPlan::from_mask(GainMask::paper_lowpass());
            let seeds: Vec<u64> = (0..lot as u64).map(|i| seed_base + i).collect();
            let stage0_only = LotEngine::with_threads(4)
                .run(factory(sigma), &seeds, &plan, stage_base().with_periods(20))
                .expect("screening run failed");
            let report = escalated(seed_base, sigma, lot, 10.0);
            for (screened, esc) in stage0_only.devices().iter().zip(report.devices()) {
                if screened.verdict == SpecVerdict::Ambiguous {
                    prop_assert!(
                        esc.stage > 0,
                        "seed {}: ambiguous at stage 0 but never escalated \
                         despite a generous budget", esc.seed
                    );
                } else {
                    // Decided at the screen: the whole report rides along
                    // untouched — verdict, plot, fit, provenance.
                    prop_assert_eq!(screened, esc);
                }
            }
        }

        /// Cumulative per-device test time is exactly the schedule's
        /// stage-cost prefix sum for the device's final stage — monotone
        /// in stage index — and the lot total never exceeds the budget
        /// by more than one re-test charge (the observed-cost ledger
        /// admits a re-test while `spent < budget`, so the final
        /// admitted one may overshoot by at most its own time).
        #[test]
        fn test_time_is_monotone_and_within_budget(
            seed_base in 0u64..100_000,
            sigma in 0.04..0.12f64,
            budget_screens in 1.0..6.0f64,
        ) {
            let lot = 4;
            let plan = LotPlan::from_mask(GainMask::paper_lowpass());
            let sched = schedule(budget_screens, &plan, lot);
            let report = escalated(seed_base, sigma, lot, budget_screens);
            // Prefix sums of the per-device stage costs.
            let cum: Vec<f64> = sched
                .stages()
                .iter()
                .enumerate()
                .scan(0.0, |acc, (s, _)| {
                    *acc += sched.device_stage_time(s, plan.grid()).value();
                    Some(*acc)
                })
                .collect();
            // Strictly increasing M makes the prefix sums strictly
            // monotone, so equal-to-prefix implies monotone-in-stage.
            for w in cum.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            let mut total = 0.0;
            for d in report.devices() {
                prop_assert!(
                    (d.test_time.value() - cum[d.stage]).abs() < 1e-9,
                    "seed {}: cumulative time {} != prefix sum {} of stage {}",
                    d.seed, d.test_time.value(), cum[d.stage], d.stage
                );
                total += d.test_time.value();
            }
            // Device times, stage accounting and the budget all agree.
            prop_assert!((report.spent().value() - total).abs() < 1e-9);
            let budget = report.budget().expect("schedule carries a budget");
            let worst_charge = sched
                .stages()
                .iter()
                .enumerate()
                .map(|(s, _)| sched.device_stage_charge(s, plan.grid()).value())
                .fold(0.0f64, f64::max);
            prop_assert!(report.spent().value() <= budget.value() + worst_charge + 1e-9,
                "spent {} exceeds budget {} by more than one charge ({})",
                report.spent().value(), budget.value(), worst_charge);
        }

        /// Escalated verdicts are exactly what a direct run at the
        /// device's final stage produces: for every device that escalated,
        /// re-running it alone at that stage's configuration reproduces
        /// the verdict — and the plot — bit for bit.
        #[test]
        fn escalated_devices_match_direct_run_at_their_stage(
            seed_base in 0u64..100_000,
            sigma in 0.05..0.12f64,
        ) {
            let lot = 4;
            let plan = LotPlan::from_mask(GainMask::paper_lowpass());
            let sched = schedule(10.0, &plan, lot);
            let report = escalated(seed_base, sigma, lot, 10.0);
            for d in report.devices() {
                if d.stage == 0 {
                    continue;
                }
                let direct = LotEngine::serial()
                    .run(factory(sigma), &[d.seed], &plan, sched.stages()[d.stage])
                    .expect("direct run failed");
                let direct = &direct.devices()[0];
                prop_assert_eq!(&d.verdict, &direct.verdict,
                    "seed {}: escalated verdict diverges from a direct run at stage {}",
                    d.seed, d.stage);
                prop_assert!(d.plot == direct.plot,
                    "seed {}: escalated plot diverges from a direct run", d.seed);
                prop_assert!(d.fit == direct.fit);
            }
        }
    }
}

mod block_pipeline_properties {
    use dut::ActiveRcFilter;
    use mixsig::units::Hertz;
    use netan::{AnalyzerConfig, BodePoint, NetworkAnalyzer};
    use proptest::prelude::*;
    use std::sync::OnceLock;

    /// One calibrated Bode point of the paper DUT measured with the given
    /// acquisition block length (fast settings: `M = 20`, short warm-up).
    fn point_with_block(block: usize, cmos: bool) -> BodePoint {
        let dut = ActiveRcFilter::paper_dut();
        let base = if cmos {
            AnalyzerConfig::cmos_035um(17)
        } else {
            AnalyzerConfig::ideal()
        };
        let cfg = AnalyzerConfig {
            warmup_periods: 10,
            ..base.with_periods(20).with_block_samples(block)
        };
        let mut na = NetworkAnalyzer::new(&dut, cfg);
        na.measure_point(Hertz(1000.0)).unwrap()
    }

    /// The default-block-size point for each profile, computed once: the
    /// measurement is deterministic, so every case compares against the
    /// same two reference values.
    fn reference_point(cmos: bool) -> &'static BodePoint {
        static IDEAL: OnceLock<BodePoint> = OnceLock::new();
        static CMOS: OnceLock<BodePoint> = OnceLock::new();
        let cell = if cmos { &CMOS } else { &IDEAL };
        cell.get_or_init(|| point_with_block(sdeval::DEFAULT_BLOCK_SAMPLES, cmos))
    }

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 8, // each case runs two full point acquisitions
            ..ProptestConfig::default()
        })]

        /// The acquisition block length is a throughput knob only: block
        /// sizes 1, 7, 64, 1024 and "whole window" must produce
        /// byte-identical `BodePoint`s, for the ideal and the seeded
        /// `cmos_035um` hardware profiles alike.
        #[test]
        fn block_size_never_changes_a_bode_point(
            block in prop_oneof![
                Just(1usize),
                Just(7usize),
                Just(64usize),
                Just(1024usize),
                Just(usize::MAX),
            ],
            cmos in any::<bool>(),
        ) {
            prop_assert_eq!(&point_with_block(block, cmos), reference_point(cmos));
        }
    }
}

mod phase_unwrap_properties {
    use mixsig::units::Hertz;
    use netan::{sweep::unwrap_phase_by_continuity, BodePoint};
    use proptest::prelude::*;
    use sdeval::Bounded;

    fn plot_from(phases: &[f64], widths: &[f64]) -> Vec<BodePoint> {
        phases
            .iter()
            .zip(widths)
            .enumerate()
            .map(|(i, (&est, &w))| BodePoint {
                frequency: Hertz(100.0 * 2f64.powi(i as i32)),
                gain: Bounded::point(1.0),
                gain_db: Bounded::point(0.0),
                phase_deg: Bounded::new(est - w / 2.0, est, est + w / 2.0),
                ideal_gain_db: 0.0,
                ideal_phase_deg: 0.0,
                round: 0,
            })
            .collect()
    }

    proptest! {
        /// Every shift the continuity pass applies is an exact multiple
        /// of 360°, and it lands consecutive estimates within 180° of
        /// each other.
        #[test]
        fn shifts_are_whole_turns(
            phases in proptest::collection::vec(-1000.0..1000.0f64, 2..10),
        ) {
            let widths = vec![1.0; phases.len()];
            let mut pts = plot_from(&phases, &widths);
            unwrap_phase_by_continuity(&mut pts);
            for (p, &orig) in pts.iter().zip(&phases) {
                let shift = p.phase_deg.est - orig;
                let turns = (shift / 360.0).round();
                prop_assert!(
                    (shift - turns * 360.0).abs() < 1e-9,
                    "shift {shift} is not a whole number of turns"
                );
            }
            for w in pts.windows(2) {
                prop_assert!((w[1].phase_deg.est - w[0].phase_deg.est).abs() <= 180.0);
            }
        }

        /// The enclosure rides along rigidly: its width is preserved and
        /// the estimate keeps its position inside the band.
        #[test]
        fn enclosure_width_is_preserved(
            phases in proptest::collection::vec(-1000.0..1000.0f64, 2..10),
            widths in proptest::collection::vec(0.0..30.0f64, 10),
        ) {
            let widths = &widths[..phases.len().min(widths.len())];
            let phases = &phases[..widths.len()];
            let mut pts = plot_from(phases, widths);
            let before: Vec<f64> = pts.iter().map(|p| p.phase_deg.width()).collect();
            unwrap_phase_by_continuity(&mut pts);
            for (p, w0) in pts.iter().zip(before) {
                prop_assert!(
                    (p.phase_deg.width() - w0).abs() < 1e-9,
                    "width changed: {} vs {w0}", p.phase_deg.width()
                );
                prop_assert!(p.phase_deg.lo <= p.phase_deg.est);
                prop_assert!(p.phase_deg.est <= p.phase_deg.hi);
            }
        }

        /// Unwrapping is idempotent: a second pass over an already
        /// unwrapped sweep is a bitwise no-op.
        #[test]
        fn second_pass_is_identity(
            phases in proptest::collection::vec(-1000.0..1000.0f64, 2..10),
        ) {
            let widths = vec![2.0; phases.len()];
            let mut once = plot_from(&phases, &widths);
            unwrap_phase_by_continuity(&mut once);
            let mut twice = once.clone();
            unwrap_phase_by_continuity(&mut twice);
            prop_assert_eq!(once, twice);
        }
    }
}

mod adaptive_properties {
    use dut::ActiveRcFilter;
    use mixsig::units::Hertz;
    use netan::{log_spaced, AnalyzerConfig, BodePlot, NetworkAnalyzer, RefinementPolicy};
    use proptest::prelude::*;

    /// A fast adaptive sweep of the paper DUT (ideal hardware, M = 20).
    fn adaptive_sweep(seed_points: usize, target_db: f64, max_points: usize) -> BodePlot {
        let dut = ActiveRcFilter::paper_dut().linearized();
        let cfg = AnalyzerConfig {
            warmup_periods: 10,
            ..AnalyzerConfig::ideal().with_periods(20)
        };
        let mut na = NetworkAnalyzer::new(&dut, cfg);
        let seed = log_spaced(Hertz(200.0), Hertz(10_000.0), seed_points);
        let policy = RefinementPolicy::new(target_db)
            .with_max_points(max_points)
            .with_max_rounds(3);
        na.sweep_adaptive(&seed, &policy).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 5, // each case measures a full adaptive sweep
            ..ProptestConfig::default()
        })]

        /// The refined grid is a superset of the seed grid, stays inside
        /// the point cap, and every measured enclosure still contains the
        /// DUT's analytic response — refinement spends points, it never
        /// spends correctness.
        #[test]
        fn refinement_is_a_superset_and_keeps_enclosures(
            seed_points in 4usize..7,
            target_db in 0.2..0.8f64,
        ) {
            let max_points = 14;
            let plot = adaptive_sweep(seed_points, target_db, max_points);
            let seed = log_spaced(Hertz(200.0), Hertz(10_000.0), seed_points);
            for f in &seed {
                prop_assert!(
                    plot.points().iter().any(
                        |p| p.frequency.value().to_bits() == f.value().to_bits()
                    ),
                    "seed frequency {f} missing from refined grid"
                );
            }
            prop_assert!(plot.len() >= seed_points && plot.len() <= max_points);
            for p in plot.points() {
                prop_assert!(
                    p.gain_db.lo <= p.ideal_gain_db && p.ideal_gain_db <= p.gain_db.hi,
                    "gain enclosure {} excludes analytic {} at {}",
                    p.gain_db, p.ideal_gain_db, p.frequency
                );
            }
            prop_assert_eq!(plot.gain_coverage(), Some(1.0));
        }
    }
}

mod shard_properties {
    use dut::ActiveRcFilter;
    use netan::{
        lot_json, AnalyzerConfig, EscalationSchedule, GainMask, LotCheckpoint, LotEngine, LotPlan,
        LotReport,
    };
    use proptest::prelude::*;
    use std::ops::Range;

    fn plan() -> LotPlan {
        LotPlan::from_mask(GainMask::paper_lowpass())
    }

    fn factory(sigma: f64) -> impl Fn(u64) -> ActiveRcFilter + Sync + Copy {
        move |seed| {
            ActiveRcFilter::paper_dut()
                .linearized()
                .fabricate(sigma, seed)
        }
    }

    /// Fast per-shard settings: short warm-up keeps each acquisition
    /// cheap enough for property cases that run whole lots repeatedly.
    fn config(cmos: bool) -> AnalyzerConfig {
        let base = if cmos {
            AnalyzerConfig::cmos_035um(11)
        } else {
            AnalyzerConfig::ideal()
        };
        AnalyzerConfig {
            warmup_periods: 10,
            ..base.with_periods(20)
        }
    }

    fn shard(lot: &Range<u64>, cmos: bool, sigma: f64, range: Range<u64>) -> LotReport {
        debug_assert!(lot.start <= range.start && range.end <= lot.end);
        LotEngine::serial()
            .run_range(factory(sigma), range, &plan(), config(cmos))
            .expect("shard run failed")
    }

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 4, // each case measures a whole lot several times over
            ..ProptestConfig::default()
        })]

        /// `LotReport::merge` is associative over adjacent shards:
        /// (A ⊕ B) ⊕ C and A ⊕ (B ⊕ C) are equal — as reports *and* as
        /// serialized `netan.lot.v4` bytes.
        #[test]
        fn merge_is_associative(
            seed_base in 0u64..100_000,
            sigma in 0.0..0.10f64,
            cut1 in 1u64..3,
            cmos in any::<bool>(),
        ) {
            let lot = seed_base..seed_base + 5;
            let cuts = [lot.start, lot.start + cut1, lot.start + 3, lot.end];
            let [a, b, c] = [0, 1, 2].map(|i| shard(&lot, cmos, sigma, cuts[i]..cuts[i + 1]));
            let left = a.clone().merge(b.clone()).merge(c.clone());
            let right = a.merge(b.merge(c));
            prop_assert_eq!(&left, &right);
            prop_assert_eq!(lot_json(&left), lot_json(&right));
        }

        /// `LotReport::empty` is a two-sided identity for merge.
        #[test]
        fn empty_is_a_two_sided_identity(
            seed_base in 0u64..100_000,
            sigma in 0.0..0.10f64,
        ) {
            let lot = seed_base..seed_base + 3;
            let r = shard(&lot, false, sigma, lot.clone());
            let plan = plan();
            prop_assert_eq!(&LotReport::empty(&plan).merge(r.clone()), &r);
            prop_assert_eq!(&r.clone().merge(LotReport::empty(&plan)), &r);
        }

        /// Any adjacent partition of a plain lot merges back to the
        /// monolithic run — byte-identical `netan.lot.v4` JSON — for the
        /// ideal and the seeded-CMOS hardware profiles alike.
        #[test]
        fn shard_partition_merges_to_the_monolithic_plain_run(
            seed_base in 0u64..100_000,
            sigma in 0.0..0.10f64,
            cut1 in 1u64..3,
            cut2 in 3u64..6,
            cmos in any::<bool>(),
        ) {
            let lot = seed_base..seed_base + 6;
            let whole = shard(&lot, cmos, sigma, lot.clone());
            let cuts = [lot.start, lot.start + cut1, lot.start + cut2, lot.end];
            let merged = (0..3)
                .map(|i| shard(&lot, cmos, sigma, cuts[i]..cuts[i + 1]))
                .reduce(LotReport::merge)
                .unwrap();
            prop_assert_eq!(lot_json(&merged), lot_json(&whole));
        }

        /// The same partition property for *escalated* (unbudgeted)
        /// schedules: stage summaries, carry-forward counts and spent
        /// time all survive the merge bit for bit.
        #[test]
        fn shard_partition_merges_to_the_monolithic_escalated_run(
            seed_base in 0u64..100_000,
            sigma in 0.04..0.12f64,
            cut in 1u64..5,
            cmos in any::<bool>(),
        ) {
            let lot = seed_base..seed_base + 5;
            let plan = plan();
            let schedule = EscalationSchedule::from_periods(config(cmos), &[20, 60]);
            let run = |range: Range<u64>| {
                LotEngine::serial()
                    .run_escalated_range(factory(sigma), range, &plan, &schedule)
                    .expect("escalated shard failed")
            };
            let whole = run(lot.clone());
            let merged = run(lot.start..lot.start + cut).merge(run(lot.start + cut..lot.end));
            prop_assert_eq!(lot_json(&merged), lot_json(&whole));
        }

        /// Checkpoint/resume equals the uninterrupted run: a drive halted
        /// after a random number of fresh shards and then resumed emits
        /// the byte-identical final document.
        #[test]
        fn resumed_checkpoint_drive_equals_the_uninterrupted_run(
            seed in 0u64..100_000,
            sigma in 0.0..0.10f64,
            halt_after in 0usize..3,
        ) {
            let dir = std::env::temp_dir()
                .join(format!("netan-ckpt-{}-{seed}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            let lot = seed..seed + 6;
            let plan = plan();
            let config = config(false);
            let engine = LotEngine::serial();
            let whole = engine
                .run_range(factory(sigma), lot.clone(), &plan, config)
                .unwrap();
            let halted = LotCheckpoint::new(&dir, 2)
                .with_shard_limit(halt_after)
                .run(&engine, factory(sigma), lot.clone(), &plan, config)
                .unwrap();
            prop_assert!(!halted.shard().unwrap().complete);
            prop_assert_eq!(halted.len() as u64, 2 * halt_after as u64);
            let resumed = LotCheckpoint::new(&dir, 2)
                .run(&engine, factory(sigma), lot, &plan, config)
                .unwrap();
            std::fs::remove_dir_all(&dir).ok();
            prop_assert_eq!(lot_json(&resumed), lot_json(&whole));
        }
    }
}

mod sequential_stopping_properties {
    use dut::ActiveRcFilter;
    use mixsig::units::Seconds;
    use netan::{
        lot_json, AnalyzerConfig, EscalationSchedule, GainMask, LotCheckpoint, LotEngine, LotPlan,
        LotReport, SpecVerdict,
    };
    use proptest::prelude::*;
    use std::ops::Range;

    fn plan() -> LotPlan {
        LotPlan::from_mask(GainMask::paper_lowpass())
    }

    fn factory(sigma: f64) -> impl Fn(u64) -> ActiveRcFilter + Sync + Copy {
        move |seed| {
            ActiveRcFilter::paper_dut()
                .linearized()
                .fabricate(sigma, seed)
        }
    }

    /// Fast three-stage sequential schedule over the given profile.
    fn schedule(cmos: bool) -> EscalationSchedule {
        let base = if cmos {
            AnalyzerConfig::cmos_035um(11)
        } else {
            AnalyzerConfig::ideal()
        };
        let base = AnalyzerConfig {
            warmup_periods: 10,
            ..base
        };
        EscalationSchedule::from_periods(base, &[20, 40, 80]).sequential()
    }

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 4, // each case measures whole lots repeatedly
            ..ProptestConfig::default()
        })]

        /// A sequential run's decided verdicts — and plots — are
        /// bit-equal to a direct plain run at the device's stopping
        /// stage: continuing a deterministic acquisition to a deeper `M`
        /// holds exactly the accumulator state a fresh run at that `M`
        /// builds, so charging only the increments changes cost, never
        /// evidence.
        #[test]
        fn sequential_verdicts_match_a_direct_run_at_the_stopping_stage(
            seed_base in 0u64..100_000,
            sigma in 0.05..0.12f64,
            cmos in any::<bool>(),
        ) {
            let plan = plan();
            let sched = schedule(cmos);
            let seeds: Vec<u64> = (0..4u64).map(|i| seed_base + i).collect();
            let report = LotEngine::with_threads(4)
                .run_escalated(factory(sigma), &seeds, &plan, &sched)
                .expect("sequential run failed");
            for d in report.devices() {
                let direct = LotEngine::serial()
                    .run(factory(sigma), &[d.seed], &plan, sched.stages()[d.stage])
                    .expect("direct run failed");
                let direct = &direct.devices()[0];
                prop_assert_eq!(&d.verdict, &direct.verdict,
                    "seed {}: sequential verdict diverges at stage {}", d.seed, d.stage);
                prop_assert!(d.plot == direct.plot,
                    "seed {}: sequential plot diverges from a direct run", d.seed);
            }
        }

        /// The report's `spent()` is exactly the seed-order fold of the
        /// observed per-device stage charges — the ledger holds no time
        /// the devices did not record, stage by stage.
        #[test]
        fn spent_is_the_fold_of_observed_device_charges(
            seed_base in 0u64..100_000,
            sigma in 0.04..0.12f64,
            cmos in any::<bool>(),
        ) {
            let plan = plan();
            let sched = schedule(cmos);
            let seeds: Vec<u64> = (0..4u64).map(|i| seed_base + i).collect();
            let report = LotEngine::serial()
                .run_escalated(factory(sigma), &seeds, &plan, &sched)
                .expect("sequential run failed");
            let mut total = Seconds(0.0);
            for (s, summary) in report.stages().iter().enumerate() {
                let fold = report
                    .devices()
                    .iter()
                    .filter(|d| d.stage_times.len() > s)
                    .fold(Seconds(0.0), |acc, d| acc + d.stage_times[s]);
                prop_assert_eq!(summary.time, fold,
                    "stage {} time diverges from the observed charges", s);
                total = total + summary.time;
            }
            prop_assert_eq!(report.spent(), total);
            // Every device's cumulative time is the fold of its own
            // per-stage charges, and decided devices stopped growing.
            for d in report.devices() {
                let own = d.stage_times.iter().fold(Seconds(0.0), |acc, &t| acc + t);
                prop_assert_eq!(d.test_time, own);
                prop_assert_eq!(d.stage_times.len(), d.stage + 1);
                if d.verdict != SpecVerdict::Ambiguous {
                    prop_assert!(d.stage_times.len() <= sched.stages().len());
                }
            }
        }

        /// Partition ⊕ merge == monolithic for unbudgeted sequential
        /// lots — byte-identical `netan.lot.v4` documents — for the
        /// ideal and the seeded-CMOS hardware profiles alike.
        #[test]
        fn sequential_shards_merge_to_the_monolithic_run(
            seed_base in 0u64..100_000,
            sigma in 0.04..0.12f64,
            cut in 1u64..5,
            cmos in any::<bool>(),
        ) {
            let plan = plan();
            let sched = schedule(cmos);
            let lot = seed_base..seed_base + 5;
            let run = |range: Range<u64>| {
                LotEngine::serial()
                    .run_escalated_range(factory(sigma), range, &plan, &sched)
                    .expect("sequential shard failed")
            };
            let whole = run(lot.clone());
            let merged = run(lot.start..lot.start + cut).merge(run(lot.start + cut..lot.end));
            prop_assert_eq!(lot_json(&merged), lot_json(&whole));
        }

        /// A budgeted sequential checkpoint drive killed after a random
        /// number of fresh shards and resumed reproduces the
        /// uninterrupted drive's outcome exactly — the byte-identical
        /// final document, or the identical typed error when an early
        /// shard's re-tests leave a later shard's screening unpayable.
        /// The remaining global budget every shard sees is recomputed
        /// from the persisted observed ledgers, so both paths replay.
        #[test]
        fn budgeted_sequential_checkpoint_resumes_byte_identically(
            seed in 0u64..100_000,
            sigma in 0.05..0.12f64,
            halt_after in 0usize..3,
        ) {
            let plan = plan();
            let c0 = netan::grid_time(20, plan.grid());
            let c1 = netan::grid_time(40, plan.grid());
            // Screening for 6 devices plus roughly one first re-test
            // increment: tight enough that later shards feel what
            // earlier shards spent.
            let budget = Seconds(6.0 * c0.value() + 1.5 * (c1.value() - c0.value()));
            let sched = schedule(false).with_budget(budget);
            let engine = LotEngine::serial();
            let lot = seed..seed + 6;
            let outcome = |r: Result<LotReport, netan::CheckpointError>| match r {
                Ok(report) => lot_json(&report),
                Err(e) => format!("error: {e}"),
            };

            let dir_a = std::env::temp_dir()
                .join(format!("netan-seq-a-{}-{seed}", std::process::id()));
            let dir_b = std::env::temp_dir()
                .join(format!("netan-seq-b-{}-{seed}", std::process::id()));
            std::fs::remove_dir_all(&dir_a).ok();
            std::fs::remove_dir_all(&dir_b).ok();
            let whole = outcome(
                LotCheckpoint::new(&dir_a, 2)
                    .run_escalated(&engine, factory(sigma), lot.clone(), &plan, &sched),
            );
            // Kill (possibly mid-error), then resume from the persisted
            // ledgers.
            let _ = LotCheckpoint::new(&dir_b, 2)
                .with_shard_limit(halt_after)
                .run_escalated(&engine, factory(sigma), lot.clone(), &plan, &sched);
            let resumed = outcome(
                LotCheckpoint::new(&dir_b, 2)
                    .run_escalated(&engine, factory(sigma), lot, &plan, &sched),
            );
            std::fs::remove_dir_all(&dir_a).ok();
            std::fs::remove_dir_all(&dir_b).ok();
            prop_assert_eq!(resumed, whole);
        }
    }

    /// Unbudgeted monolithic sanity anchor for the suite above: a
    /// sequential report never spends more than its staged twin, and
    /// spends strictly less whenever any device escalated.
    #[test]
    fn sequential_never_spends_more_than_staged() {
        let plan = plan();
        let seq = schedule(false);
        let staged = seq.clone().with_stopping(netan::StoppingPolicy::Staged);
        let seeds: Vec<u64> = (0..6).collect();
        let engine = LotEngine::serial();
        let a = engine
            .run_escalated(factory(0.09), &seeds, &plan, &staged)
            .unwrap();
        let b = engine
            .run_escalated(factory(0.09), &seeds, &plan, &seq)
            .unwrap();
        assert_eq!(
            a.devices().iter().map(|d| d.verdict).collect::<Vec<_>>(),
            b.devices().iter().map(|d| d.verdict).collect::<Vec<_>>()
        );
        assert!(b.spent().value() <= a.spent().value());
        if a.devices().iter().any(|d| d.stage > 0) {
            assert!(b.spent().value() < a.spent().value());
        }
    }
}

mod mixsig_properties {
    use mixsig::Matrix;
    use proptest::prelude::*;

    fn small_matrix() -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-1.0..1.0f64, 9)
            .prop_map(|v| Matrix::from_rows(&[&v[0..3], &v[3..6], &v[6..9]]))
    }

    proptest! {
        /// exp(A)·exp(−A) = I for arbitrary small matrices.
        #[test]
        fn expm_inverse(a in small_matrix()) {
            let e = a.expm();
            let e_inv = a.scaled(-1.0).expm();
            let p = &e * &e_inv;
            for r in 0..3 {
                for c in 0..3 {
                    let expect = if r == c { 1.0 } else { 0.0 };
                    prop_assert!((p[(r, c)] - expect).abs() < 1e-9);
                }
            }
        }

        /// det-free sanity: expm of the zero-scaled matrix is I.
        #[test]
        fn expm_zero_scaling(a in small_matrix()) {
            let z = a.scaled(0.0).expm();
            for r in 0..3 {
                for c in 0..3 {
                    let expect = if r == c { 1.0 } else { 0.0 };
                    prop_assert!((z[(r, c)] - expect).abs() < 1e-14);
                }
            }
        }
    }
}
