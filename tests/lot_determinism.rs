//! Determinism guarantees of the parallel `LotEngine`: a parallel lot run
//! must be **bit-identical** to the serial reference — same plots, same
//! verdicts, same fitted summaries, same error on failure — for both the
//! ideal and the seeded-CMOS analyzer profiles.
//!
//! The asserts use `PartialEq`, i.e. IEEE equality on every `f64` field —
//! no tolerances. Since serial and parallel schedules execute the same
//! deterministic per-device instruction stream, equal values here mean
//! equal bytes (all measured values are finite; only a ±0.0 difference
//! could hide behind IEEE equality, and identical computations cannot
//! produce one).

use dut::ActiveRcFilter;
use mixsig::units::Hertz;
use netan::{
    AnalyzerConfig, GainMask, LotEngine, LotPlan, NetanError, NetworkAnalyzer, SweepEngine,
};

fn paper_factory(sigma: f64) -> impl Fn(u64) -> ActiveRcFilter + Sync {
    move |seed| {
        ActiveRcFilter::paper_dut()
            .linearized()
            .fabricate(sigma, seed)
    }
}

fn paper_plan() -> LotPlan {
    LotPlan::from_mask(GainMask::paper_lowpass())
}

#[test]
fn parallel_lot_matches_serial_ideal() {
    let plan = paper_plan();
    let config = AnalyzerConfig::ideal().with_periods(60);
    let seeds: Vec<u64> = (0..8).collect();
    let factory = paper_factory(0.05);

    let serial = LotEngine::serial()
        .run(&factory, &seeds, &plan, config)
        .unwrap();
    let parallel = LotEngine::with_threads(8)
        .run(&factory, &seeds, &plan, config)
        .unwrap();
    assert_eq!(serial, parallel);
    assert_eq!(serial.len(), seeds.len());
    // Device order is seed order, regardless of completion order.
    for (d, &seed) in serial.devices().iter().zip(&seeds) {
        assert_eq!(d.seed, seed);
    }
}

#[test]
fn nested_point_engine_does_not_change_the_bits() {
    let plan = paper_plan();
    let config = AnalyzerConfig::ideal().with_periods(60);
    let seeds: Vec<u64> = (0..4).collect();
    let factory = paper_factory(0.05);

    let reference = LotEngine::serial()
        .run(&factory, &seeds, &plan, config)
        .unwrap();
    let nested = LotEngine::with_threads(3)
        .with_point_engine(SweepEngine::with_threads(2))
        .run(&factory, &seeds, &plan, config)
        .unwrap();
    assert_eq!(reference, nested);
}

#[test]
fn parallel_lot_matches_serial_with_seeded_cmos_noise() {
    // The CMOS profile exercises every seeded noise/mismatch source of
    // the analyzer's own hardware; determinism must survive the fan-out.
    let plan = paper_plan();
    let config = AnalyzerConfig::cmos_035um(7).with_periods(80);
    let seeds: Vec<u64> = (0..5).collect();
    let factory = paper_factory(0.03);

    let serial = LotEngine::serial()
        .run(&factory, &seeds, &plan, config)
        .unwrap();
    let parallel = LotEngine::with_threads(8)
        .run(&factory, &seeds, &plan, config)
        .unwrap();
    assert_eq!(serial, parallel);
}

#[test]
fn lowest_index_device_error_wins_under_any_schedule() {
    // Seeds 2 and 5 fabricate into devices with a NaN pole — not
    // simulable. Serial and parallel runs must both report the
    // lowest-index failing device, exactly as an in-order run would.
    let plan = paper_plan();
    let config = AnalyzerConfig::ideal().with_periods(60);
    let seeds: Vec<u64> = (0..8).collect();
    let factory = |seed: u64| {
        if seed == 2 || seed == 5 {
            ActiveRcFilter::new(Hertz(f64::NAN), 0.7, 1.0)
        } else {
            ActiveRcFilter::paper_dut()
                .linearized()
                .fabricate(0.05, seed)
        }
    };
    let expected = NetanError::DeviceNotSimulable { seed: 2 };

    for engine in [
        LotEngine::serial(),
        LotEngine::with_threads(8),
        LotEngine::with_threads(3).with_point_engine(SweepEngine::with_threads(2)),
    ] {
        assert_eq!(
            engine.run(factory, &seeds, &plan, config).unwrap_err(),
            expected,
            "{engine:?}"
        );
    }
}

#[test]
fn run_range_is_deterministic_and_equals_run_over_the_same_seeds() {
    // Range execution is the sharding primitive: it must be bit-identical
    // across thread counts and to `run` over the collected seed list
    // (which attaches the same contiguous span).
    let plan = paper_plan();
    let config = AnalyzerConfig::ideal().with_periods(60);
    let factory = paper_factory(0.05);

    let serial = LotEngine::serial()
        .run_range(&factory, 3..9, &plan, config)
        .unwrap();
    let parallel = LotEngine::with_threads(8)
        .run_range(&factory, 3..9, &plan, config)
        .unwrap();
    assert_eq!(serial, parallel);
    let seeds: Vec<u64> = (3..9).collect();
    let from_slice = LotEngine::serial()
        .run(&factory, &seeds, &plan, config)
        .unwrap();
    assert_eq!(serial, from_slice);
    let span = serial.shard().unwrap();
    assert_eq!(
        (span.seed_start, span.seed_end, span.complete),
        (3, 9, true)
    );
}

#[test]
fn amortized_calibration_matches_per_device_calibration() {
    // The lot engine calibrates once (bypass taps the stimulus ahead of
    // the DUT) and shares the result; a standalone analyzer calibrates
    // against its own device. The measured plots must agree bit for bit.
    let plan = paper_plan();
    let config = AnalyzerConfig::ideal().with_periods(60);
    let device = paper_factory(0.05)(3);

    let lot = LotEngine::serial()
        .run(|_| device.clone(), &[3], &plan, config)
        .unwrap();
    let mut standalone = NetworkAnalyzer::new(&device, config);
    let plot = standalone
        .sweep_with(&SweepEngine::serial(), plan.grid())
        .unwrap();
    assert_eq!(lot.devices()[0].plot, plot);
}

#[test]
fn parallel_harmonics_match_serial_bit_identically() {
    // Distortion screening rides the same pool: per-k acquisitions are
    // independent, so the parallel variant must reproduce the serial
    // bytes, fundamental first.
    let dut = ActiveRcFilter::paper_dut(); // includes the nonlinearity
    let config = AnalyzerConfig::ideal().with_periods(100);
    let mut na = NetworkAnalyzer::new(&dut, config);
    let serial = na.measure_harmonics(Hertz(1600.0), 3).unwrap();
    let parallel = na
        .measure_harmonics_with(&SweepEngine::with_threads(3), Hertz(1600.0), 3)
        .unwrap();
    assert_eq!(serial, parallel);
    assert_eq!(parallel.len(), 3);
    assert_eq!(parallel[0].k, 1);
    // Invalid stimulus frequency is rejected before any acquisition.
    assert!(matches!(
        na.measure_harmonics_with(&SweepEngine::auto(), Hertz(0.0), 3),
        Err(NetanError::InvalidFrequency { .. })
    ));
}
